package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/units"
)

// Config parameterizes one coordinated distributed analysis.
type Config struct {
	// B is the bound design. The coordinator uses it only to derive the
	// shard plan and the effective supply voltage; the analysis itself runs
	// on the workers.
	B *bind.Design
	// Opts are the analysis options, shared verbatim with every engine.
	// MaxIter, NoPropagation, Mode, and RoundBudget also steer the
	// coordinator's own loop so it replicates AnalyzeIterative exactly.
	Opts core.Options
	// Workers are the execution backends. Shards are assigned round-robin
	// and reassigned to surviving workers when one is lost.
	Workers []Worker
	// Shards is the partition size (default: one per worker).
	Shards int
	// Seed steers the pseudo-random partition growth (deterministic per
	// seed).
	Seed int64
	// Token names the run; it routes requests on shared workers and keys
	// the checkpoint.
	Token string
	// Design is the design source shipped to remote workers in init
	// requests; in-process workers ignore it.
	Design *DesignSpec
	// MaxRounds bounds the outer noise–delay loop (default 8).
	MaxRounds int
	// Plan and Assignment override the derived schedule and partition
	// (tests); nil derives both from B, Shards, and Seed.
	Plan       *core.ShardPlan
	Assignment *Assignment
	// DispatchTimeout bounds each dispatch attempt (0 = only the run
	// context limits it).
	DispatchTimeout time.Duration
	// Attempts is how many times one dispatch is tried on a worker before
	// the worker is declared lost (default 2).
	Attempts int
	// Backoff is the base delay between attempts on the same worker,
	// growing linearly (0 = immediate retry).
	Backoff time.Duration
	// Checkpointer persists round state for crash resume (nil = off).
	Checkpointer Checkpointer
	// Logf receives coordinator progress and degradation logs (nil = quiet).
	Logf func(format string, args ...any)
}

// Outcome is the merged result of a distributed run. For a healthy run it
// is byte-identical (after report serialization) to AnalyzeIterative on
// the same design and options; under worker loss it is a sound
// conservative report with the loss recorded in Noise.Diags.
type Outcome struct {
	Noise *core.Result
	Delay *core.DelayResult
	// Padding, Rounds, Converged, Diverging, and DivergeReason mirror
	// core.IterativeResult.
	Padding       map[string]float64
	Rounds        int
	Converged     bool
	Diverging     bool
	DivergeReason string
	// Degraded reports any fail-soft degradation, including abandoned
	// shards (equivalent to len(Noise.Diags) > 0).
	Degraded bool
	// Resumed reports the run continued from a checkpoint.
	Resumed bool
	// Reassigns counts shard re-hostings (engine rebuilds on a new or the
	// same worker); AbandonedShards lists shards degraded to the full-rail
	// fallback because no worker could host them.
	Reassigns       int
	AbandonedShards []int
}

// errAbandoned marks a dispatch to a shard that was degraded to the
// full-rail fallback; the phase skips it and the run stays sound.
var errAbandoned = errors.New("shard: abandoned")

// run is the mutable state of one coordinated analysis.
type run struct {
	cfg       Config
	plan      *core.ShardPlan
	asn       *Assignment
	importers map[string][]int
	// present[s][w] reports shard s owning nets in wave w — waves without
	// owned nets are never dispatched to s.
	present [][]bool
	maxIter int
	frEvent core.Event
	frComb  core.Combined

	seq atomic.Int64

	mu    sync.Mutex
	hosts []int  // shard -> worker index, -1 = abandoned
	alive []bool // worker index -> believed alive
	cause []error
	// combs is the coordinator's authoritative committed combination per
	// net; pending[s] marks imports of s with updates not yet shipped.
	combs   map[string][2]core.Combined
	pending []map[string]bool
	padding map[string]float64
	// progress is how many waves of the current pass are complete — the
	// warm-up horizon for a rebuilt engine (see reinit).
	progress    int
	passChanged bool
	needExtra   bool
	reassigns   int
}

// Run executes the distributed noise–delay fixpoint: partition, fan out,
// exchange boundary windows wave by wave, grow padding round by round,
// and merge — surviving worker loss by reassigning or, at worst,
// degrading lost shards to the conservative full-rail bound. It returns
// an error only for cancellation, a deterministic analysis failure (which
// would equally fail single-process), or a setup problem; worker loss
// never fails the run.
func Run(ctx context.Context, cfg Config) (*Outcome, error) {
	if cfg.B == nil {
		return nil, fmt.Errorf("shard: coordinator needs a bound design")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one worker")
	}
	if cfg.Token == "" {
		cfg.Token = "run"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2
	}
	plan := cfg.Plan
	if plan == nil {
		var err error
		if plan, err = core.BuildShardPlan(ctx, cfg.B); err != nil {
			return nil, err
		}
	}
	asn := cfg.Assignment
	if asn == nil {
		shards := cfg.Shards
		if shards <= 0 {
			shards = len(cfg.Workers)
		}
		var err error
		if asn, err = Partition(plan, shards, cfg.Seed); err != nil {
			return nil, err
		}
	}
	r := &run{
		cfg:       cfg,
		plan:      plan,
		asn:       asn,
		importers: asn.ImportersOf(),
		maxIter:   core.DefaultMaxIter(cfg.Opts.MaxIter),
		hosts:     make([]int, asn.Shards),
		alive:     make([]bool, len(cfg.Workers)),
		cause:     make([]error, asn.Shards),
		combs:     make(map[string][2]core.Combined, len(plan.Order)),
		pending:   make([]map[string]bool, asn.Shards),
		padding:   make(map[string]float64),
	}
	r.frEvent, r.frComb = core.FullRail(core.EffectiveVdd(cfg.B, cfg.Opts))
	for s := range r.hosts {
		r.hosts[s] = s % len(cfg.Workers)
		r.pending[s] = make(map[string]bool)
	}
	for w := range r.alive {
		r.alive[w] = true
	}
	r.present = make([][]bool, asn.Shards)
	for s := range r.present {
		r.present[s] = make([]bool, len(plan.Waves))
	}
	for wi, w := range plan.Waves {
		for _, net := range w.Nets {
			r.present[asn.Owner[net]][wi] = true
		}
	}

	out := &Outcome{Padding: r.padding}
	startRound := 1
	prevGrowth := math.Inf(1)
	stalled := 0
	if cfg.Checkpointer != nil {
		cp, err := cfg.Checkpointer.Load(cfg.Token)
		switch {
		case err != nil:
			cfg.Logf("shard: checkpoint load failed, starting fresh: %v", err)
		case cp != nil:
			for _, e := range cp.Padding {
				r.padding[e.Net] = e.Pad
			}
			startRound = cp.Round + 1
			if cp.PrevGrowth != nil {
				prevGrowth = *cp.PrevGrowth
			}
			stalled = cp.Stalled
			out.Resumed = true
			cfg.Logf("shard: resuming after round %d (%d padded nets)", cp.Round, len(cp.Padding))
		}
	}

	maxRounds := core.DefaultMaxRounds(cfg.MaxRounds)
	var (
		changed    []string
		impacts    []core.DelayImpact
		iterations int
		converged  bool
		completed  bool
	)
	// The round loop below replicates AnalyzeIterativeCtx verbatim —
	// growth rule, watchdog, and diverge reasons — with the three engine
	// phases (fixpoint, delay, padding update) dispatched to shards.
	for round := startRound; round <= maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		if round == startRound {
			// First (or resumed) round: build every shard's engine, seeded
			// with the cumulative padding.
			if err := r.initAll(ctx); err != nil {
				return nil, err
			}
		} else if err := r.applyRoundAll(ctx, changed); err != nil {
			return nil, err
		}
		var err error
		if iterations, converged, err = r.fixpoint(ctx); err != nil {
			return nil, err
		}
		if impacts, err = r.delayAll(ctx); err != nil {
			return nil, err
		}
		out.Rounds = round
		grew := false
		var growth float64
		changed = changed[:0]
		for _, im := range impacts {
			if im.Delta > r.padding[im.Net]+core.PaddingTol {
				growth = math.Max(growth, im.Delta-r.padding[im.Net])
				r.padding[im.Net] = im.Delta
				changed = append(changed, im.Net)
				grew = true
			}
		}
		if !grew {
			out.Converged = true
			completed = true
			break
		}
		if cfg.Opts.RoundBudget > 0 {
			if elapsed := time.Since(start); elapsed > cfg.Opts.RoundBudget {
				out.Diverging = true
				out.DivergeReason = fmt.Sprintf("round %d took %s, over the %s budget",
					round, elapsed.Round(time.Millisecond), cfg.Opts.RoundBudget)
				completed = true
				break
			}
		}
		if growth >= prevGrowth-core.PaddingTol {
			stalled++
		} else {
			stalled = 0
		}
		if stalled >= 2 {
			out.Diverging = true
			out.DivergeReason = fmt.Sprintf(
				"padding growth not contracting for %d rounds (latest %.3gps/round)",
				stalled, growth/units.Pico)
			completed = true
			break
		}
		prevGrowth = growth
		r.saveCheckpoint(round, prevGrowth, stalled)
	}
	if !completed {
		out.Diverging = true
		out.DivergeReason = fmt.Sprintf("padding still growing after %d rounds", maxRounds)
	}

	cols, err := r.collectAll(ctx)
	if err != nil {
		return nil, err
	}
	r.assemble(out, cols, impacts, iterations, converged)
	r.closeAll()
	if cfg.Checkpointer != nil {
		if err := cfg.Checkpointer.Clear(cfg.Token); err != nil {
			cfg.Logf("shard: checkpoint clear failed: %v", err)
		}
	}
	return out, nil
}

func (r *run) nextSeq() int { return int(r.seq.Add(1)) }

func (r *run) hostOf(shard int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hosts[shard]
}

func (r *run) setProgress(p int) {
	r.mu.Lock()
	r.progress = p
	r.mu.Unlock()
}

// liveShards returns the shards not yet abandoned, ascending.
func (r *run) liveShards() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for s, h := range r.hosts {
		if h >= 0 {
			out = append(out, s)
		}
	}
	return out
}

// isFatal reports a deterministic analysis failure: retrying it anywhere
// reproduces it, so the run must abort (exactly as single-process would).
func isFatal(err error) bool {
	var fe *FatalError
	return errors.As(err, &fe)
}

// tryWorker runs one dispatch on one worker with per-attempt timeout,
// linear backoff, and bounded retries. Fatal and engine-broken errors
// return immediately (retrying in place cannot help); transient errors
// (timeouts, transport loss, injected faults) are retried Attempts times
// before the caller declares the worker lost.
func (r *run) tryWorker(ctx context.Context, wi, shard int, op string, req routed, resp any) error {
	req.setRoute(r.cfg.Token, shard)
	var last error
	for att := 0; att < r.cfg.Attempts; att++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if att > 0 && r.cfg.Backoff > 0 {
			select {
			case <-time.After(time.Duration(att) * r.cfg.Backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		actx := ctx
		cancel := func() {}
		if r.cfg.DispatchTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.cfg.DispatchTimeout)
		}
		err := r.cfg.Workers[wi].Do(actx, op, req, resp)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		if isFatal(err) || errors.Is(err, ErrEngineBroken) {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return last
}

// dispatch executes one op against a shard wherever it is hosted,
// surviving worker loss: engine-broken answers re-initialize in place,
// transient loss marks the worker dead and re-hosts the shard on a
// survivor (rebuilding its engine from the authoritative state), and only
// when no worker can host it is the shard abandoned (errAbandoned). The
// op request must be reusable across retries — the runner's protocol
// (eval Seq memo, idempotent round/init) makes re-execution exact.
func (r *run) dispatch(ctx context.Context, shard int, op string, req routed, resp any) error {
	brokenTries := 0
	for {
		wi := r.hostOf(shard)
		if wi < 0 {
			return errAbandoned
		}
		if !r.workerAlive(wi) {
			if err := r.rehost(ctx, shard); err != nil {
				return err
			}
			continue
		}
		err := r.tryWorker(ctx, wi, shard, op, req, resp)
		if err == nil {
			return nil
		}
		if isFatal(err) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if errors.Is(err, ErrEngineBroken) && brokenTries == 0 {
			// The engine refused work after a half-applied update; rebuild
			// it in place once. A second broken answer means the rebuild
			// path itself is failing — treat the worker as lost.
			brokenTries++
			rerr := r.reinit(ctx, shard, wi)
			if rerr == nil {
				continue
			}
			if isFatal(rerr) {
				return rerr
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			err = rerr
		}
		r.markDead(wi, err)
		if rerr := r.rehost(ctx, shard); rerr != nil {
			return rerr
		}
	}
}

func (r *run) workerAlive(wi int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alive[wi]
}

func (r *run) markDead(wi int, err error) {
	r.mu.Lock()
	was := r.alive[wi]
	r.alive[wi] = false
	r.mu.Unlock()
	if was {
		r.cfg.Logf("shard: worker %s lost: %v", r.cfg.Workers[wi].Name(), err)
	}
}

// rehost moves a shard onto a live worker (possibly the one it is already
// on, after the initial placement) and rebuilds its engine there. When no
// live worker remains — or every candidate fails — the shard is abandoned
// and errAbandoned returned; deterministic failures and cancellation
// propagate.
func (r *run) rehost(ctx context.Context, shard int) error {
	for {
		r.mu.Lock()
		if r.hosts[shard] < 0 {
			r.mu.Unlock()
			return errAbandoned
		}
		cand := -1
		for off := 1; off <= len(r.alive); off++ {
			w := (r.hosts[shard] + off) % len(r.alive)
			if r.alive[w] {
				cand = w
				break
			}
		}
		if cand < 0 {
			r.mu.Unlock()
			r.abandon(shard, errors.New("no live workers remain"))
			return errAbandoned
		}
		r.hosts[shard] = cand
		r.reassigns++
		r.mu.Unlock()
		r.cfg.Logf("shard: re-hosting shard %d on worker %s", shard, r.cfg.Workers[cand].Name())
		err := r.reinit(ctx, shard, cand)
		if err == nil {
			return nil
		}
		if isFatal(err) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		r.markDead(cand, err)
	}
}

// reinit rebuilds a shard's engine on worker wi: a fresh padding-seeded
// init, the authoritative combinations restored, and a warm-up sweep over
// the waves already evaluated this pass so the fresh engine's event lists
// and statistics catch up with the state the lost engine carried. The
// warm-up re-evaluations see exactly the inputs the lost engine saw, so
// they commit identical values and report no spurious updates.
func (r *run) reinit(ctx context.Context, shard, wi int) error {
	req := &InitRequest{Design: r.cfg.Design}
	r.mu.Lock()
	req.Owned = r.asn.Owned[shard]
	req.Padding = padEntries(r.padding)
	restore := make([]string, 0, len(r.asn.Owned[shard])+len(r.asn.Imports[shard]))
	for _, net := range r.asn.Owned[shard] {
		if _, ok := r.combs[net]; ok {
			restore = append(restore, net)
		}
	}
	for _, net := range r.asn.Imports[shard] {
		if _, ok := r.combs[net]; ok {
			restore = append(restore, net)
		}
	}
	sort.Strings(restore)
	for _, net := range restore {
		req.Restore = append(req.Restore, NetComb{Net: net, Comb: combsToWire(r.combs[net])})
	}
	// The restore supersedes any queued boundary deltas.
	r.pending[shard] = make(map[string]bool)
	warmTo := r.progress
	r.mu.Unlock()

	if err := r.tryWorker(ctx, wi, shard, OpInit, req, nil); err != nil {
		return err
	}
	for w := 0; w < warmTo; w++ {
		if !r.present[shard][w] {
			continue
		}
		ereq := &EvalRequest{Seq: r.nextSeq(), Wave: w}
		eresp := &EvalResponse{}
		if err := r.tryWorker(ctx, wi, shard, OpEval, ereq, eresp); err != nil {
			return err
		}
		r.applyUpdates(shard, eresp.Updates)
	}
	return nil
}

// abandon degrades a shard that no worker can host: its owned nets get
// the conservative full-rail combination (the same bound fail-soft
// degradation uses), importers are notified so downstream propagation
// sees the bound, and the merge will synthesize per-net degradation
// records. The report stays sound — pessimistic, never wrong.
func (r *run) abandon(shard int, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hosts[shard] < 0 {
		return
	}
	r.hosts[shard] = -1
	r.cause[shard] = cause
	for _, net := range r.asn.Owned[shard] {
		r.combs[net] = [2]core.Combined{r.frComb, r.frComb}
		for _, t := range r.importers[net] {
			if t != shard && r.hosts[t] >= 0 {
				r.pending[t][net] = true
			}
		}
	}
	// Importers must re-evaluate against the bound, and the fixpoint must
	// not conclude on a pass that missed these pushes.
	r.passChanged = true
	r.needExtra = true
	r.cfg.Logf("shard: abandoning shard %d (%d nets degrade to full-rail): %v",
		shard, len(r.asn.Owned[shard]), cause)
}

// takeBoundary drains the queued boundary updates for a shard into a wire
// list (sorted for determinism). Entries are moved, not copied: the
// caller's request owns them across retries, and a re-host's restore
// supersedes them anyway.
func (r *run) takeBoundary(shard int) []NetComb {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending[shard]) == 0 {
		return nil
	}
	nets := make([]string, 0, len(r.pending[shard]))
	for net := range r.pending[shard] {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	out := make([]NetComb, 0, len(nets))
	for _, net := range nets {
		out = append(out, NetComb{Net: net, Comb: combsToWire(r.combs[net])})
		delete(r.pending[shard], net)
	}
	return out
}

// applyUpdates commits a shard's wave updates to the authoritative state
// and queues them for every shard importing the changed nets.
func (r *run) applyUpdates(shard int, ups []NetComb) {
	if len(ups) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range ups {
		r.combs[u.Net] = combsFromWire(u.Comb)
		for _, t := range r.importers[u.Net] {
			if t != shard && r.hosts[t] >= 0 {
				r.pending[t][u.Net] = true
			}
		}
	}
	r.passChanged = true
}

// forEachShard runs fn concurrently over the given shards and returns the
// first fatal error; errAbandoned results are tolerated (the shard was
// degraded, the run goes on).
func (r *run) forEachShard(shards []int, fn func(s int) error) error {
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, errAbandoned) {
			return err
		}
	}
	return nil
}

// initAll builds every live shard's engine, seeded with the cumulative
// padding (empty on a fresh run, the checkpoint's on resume).
func (r *run) initAll(ctx context.Context) error {
	r.setProgress(0)
	return r.forEachShard(r.liveShards(), func(s int) error {
		wi := r.hostOf(s)
		if wi < 0 {
			return errAbandoned
		}
		if err := r.reinit(ctx, s, wi); err == nil {
			return nil
		} else if isFatal(err) {
			return err
		} else if cerr := ctx.Err(); cerr != nil {
			return cerr
		} else {
			r.markDead(wi, err)
		}
		return r.rehost(ctx, s)
	})
}

// applyRoundAll pushes one round of padding growth to every live shard.
func (r *run) applyRoundAll(ctx context.Context, changed []string) error {
	r.setProgress(0)
	entries := make([]PadEntry, len(changed))
	r.mu.Lock()
	for i, net := range changed {
		entries[i] = PadEntry{Net: net, Pad: r.padding[net]}
	}
	r.mu.Unlock()
	return r.forEachShard(r.liveShards(), func(s int) error {
		return r.dispatch(ctx, s, OpRound, &RoundRequest{Shard: s, Changed: entries}, nil)
	})
}

// fixpoint runs the within-round propagation fixpoint in lockstep wave
// dispatches, replicating runFixpoint's pass accounting: passes repeat
// until one commits no change (or NoPropagation makes one pass exact),
// bounded by MaxIter. A pass disturbed by a re-hosting or an abandonment
// is followed by at least one more, so convergence is never declared on a
// pass that missed recovery traffic.
func (r *run) fixpoint(ctx context.Context) (int, bool, error) {
	iterations, converged := 0, false
	for iter := 0; iter < r.maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return iterations, false, err
		}
		iterations++
		r.mu.Lock()
		r.passChanged = false
		r.progress = 0
		r.mu.Unlock()
		for wi := range r.plan.Waves {
			r.setProgress(wi)
			if err := r.evalWaveAll(ctx, wi); err != nil {
				return iterations, false, err
			}
		}
		r.mu.Lock()
		changed := r.passChanged
		extra := r.needExtra
		r.needExtra = false
		r.mu.Unlock()
		if extra {
			continue
		}
		if !changed || r.cfg.Opts.NoPropagation {
			converged = true
			break
		}
	}
	r.setProgress(len(r.plan.Waves))
	return iterations, converged, nil
}

// evalWaveAll dispatches one wave to every shard owning nets in it,
// shipping each shard's queued boundary imports with the request.
func (r *run) evalWaveAll(ctx context.Context, wi int) error {
	var shards []int
	for _, s := range r.liveShards() {
		if r.present[s][wi] {
			shards = append(shards, s)
		}
	}
	return r.forEachShard(shards, func(s int) error {
		req := &EvalRequest{Seq: r.nextSeq(), Shard: s, Wave: wi, Boundary: r.takeBoundary(s)}
		resp := &EvalResponse{}
		if err := r.dispatch(ctx, s, OpEval, req, resp); err != nil {
			return err
		}
		r.applyUpdates(s, resp.Updates)
		return nil
	})
}

// delayAll gathers every live shard's delta-delay impacts and sorts the
// concatenation with the engine's own (total) comparator, yielding exactly
// the single-process impact order.
func (r *run) delayAll(ctx context.Context) ([]core.DelayImpact, error) {
	shards := r.liveShards()
	per := make([][]core.DelayImpact, len(shards))
	err := r.forEachShard(shards, func(s int) error {
		resp := &DelayResponse{}
		if err := r.dispatch(ctx, s, OpDelay, &DelayRequest{Shard: s}, resp); err != nil {
			return err
		}
		ims := make([]core.DelayImpact, 0, len(resp.Impacts))
		for _, iw := range resp.Impacts {
			ims = append(ims, iw.impact())
		}
		for i, ss := range shards {
			if ss == s {
				per[i] = ims
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []core.DelayImpact
	for _, ims := range per {
		all = append(all, ims...)
	}
	core.SortImpacts(all)
	return all, nil
}

// collectAll gathers every live shard's slice of the final result.
func (r *run) collectAll(ctx context.Context) (map[int]*CollectResponse, error) {
	shards := r.liveShards()
	var mu sync.Mutex
	cols := make(map[int]*CollectResponse, len(shards))
	err := r.forEachShard(shards, func(s int) error {
		resp := &CollectResponse{}
		if err := r.dispatch(ctx, s, OpCollect, &CollectRequest{Shard: s}, resp); err != nil {
			return err
		}
		mu.Lock()
		cols[s] = resp
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// closeAll releases worker-side engines, best effort.
func (r *run) closeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for wi, w := range r.cfg.Workers {
		if !r.workerAlive(wi) {
			continue
		}
		req := &CloseRequest{Shard: -1}
		req.setRoute(r.cfg.Token, -1)
		if err := w.Do(ctx, OpClose, req, nil); err != nil {
			r.cfg.Logf("shard: close on worker %s failed: %v", w.Name(), err)
		}
	}
}

// assemble merges the shard collects into the single-process result
// shapes. Violations and slacks are interleaved in the canonical gather
// order (global alphabetical net order, each shard's per-net groups kept
// intact) and then sorted with the engine's own comparators — the exact
// sequence checkViolations produces, which matters because that sort's
// comparator is not total. Abandoned shards contribute synthesized
// full-rail records and StageShard degradation diags instead.
func (r *run) assemble(out *Outcome, cols map[int]*CollectResponse, impacts []core.DelayImpact, iterations int, converged bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.plan.Order...)
	sort.Strings(names)
	noise := &core.Result{
		Mode: r.cfg.Opts.Mode,
		Nets: make(map[string]*core.NetNoise, len(names)),
	}
	stats := core.Stats{
		Victims:    len(r.plan.Order),
		Iterations: iterations,
		Converged:  converged,
	}
	type groups struct {
		v  map[string][]core.Violation
		sl map[string][]core.ReceiverSlack
	}
	byShard := make(map[int]*groups, len(cols))
	var diags []core.Diag
	shardIDs := make([]int, 0, len(cols))
	for s := range cols {
		shardIDs = append(shardIDs, s)
	}
	sort.Ints(shardIDs)
	for _, s := range shardIDs {
		col := cols[s]
		stats.AggressorPairs += col.Pairs
		stats.Filtered += col.Filtered
		stats.Propagated += col.Propagated
		g := &groups{
			v:  make(map[string][]core.Violation),
			sl: make(map[string][]core.ReceiverSlack),
		}
		for _, vw := range col.Violations {
			v := vw.violation()
			g.v[v.Net] = append(g.v[v.Net], v)
		}
		for _, sw := range col.Slacks {
			sl := sw.slack()
			g.sl[sl.Net] = append(g.sl[sl.Net], sl)
		}
		byShard[s] = g
		for _, nw := range col.Nets {
			noise.Nets[nw.Net] = nw.netNoise()
		}
		for _, dw := range col.Diags {
			diags = append(diags, dw.diag())
		}
	}
	for s := range r.hosts {
		if r.hosts[s] >= 0 {
			continue
		}
		out.AbandonedShards = append(out.AbandonedShards, s)
		for _, net := range r.asn.Owned[s] {
			noise.Nets[net] = &core.NetNoise{
				Net:    net,
				Events: [2][]core.Event{{r.frEvent}, {r.frEvent}},
				Comb:   [2]core.Combined{r.frComb, r.frComb},
			}
			diags = append(diags, core.Diag{
				Net:      net,
				Stage:    core.StageShard,
				Err:      fmt.Errorf("shard %d lost: %v", s, r.cause[s]),
				Degraded: true,
			})
		}
	}
	var vs []core.Violation
	var sls []core.ReceiverSlack
	for _, name := range names {
		if g := byShard[r.asn.Owner[name]]; g != nil {
			vs = append(vs, g.v[name]...)
			sls = append(sls, g.sl[name]...)
		}
	}
	core.SortViolations(vs)
	core.SortSlacks(sls)
	core.SortDiags(diags)
	noise.Violations = vs
	noise.Slacks = sls
	noise.Diags = diags
	stats.DegradedNets = len(diags)
	noise.Stats = stats
	out.Noise = noise
	out.Delay = &core.DelayResult{Mode: r.cfg.Opts.Mode, Impacts: impacts, Diags: diags}
	out.Degraded = len(diags) > 0
	out.Reassigns = r.reassigns
}
