package shard

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// fixtureMaker regenerates one workload fixture from scratch. Workers
// build their (shared, immutable-after-bind) design lazily from a
// closure, not a value, mirroring a remote worker parsing its own copy:
// the generators are deterministic, so every call yields an identical
// design.
type fixtureMaker func() (*workload.Generated, error)

// fixtures covers every topology class the generators offer: bus
// coupling, multi-level fabric propagation, iterative-loop ladders,
// window-rich stars, and correlated differential pairs.
func fixtures() map[string]fixtureMaker {
	return map[string]fixtureMaker{
		"bus": func() (*workload.Generated, error) {
			return workload.Bus(workload.BusSpec{Bits: 8, Segs: 2, WindowWidth: 80 * units.Pico})
		},
		"fabric": func() (*workload.Generated, error) {
			return workload.Fabric(workload.FabricSpec{Width: 6, Levels: 3})
		},
		"ladder": func() (*workload.Generated, error) {
			return workload.Ladder(workload.LadderSpec{Lines: 12, Steps: 3})
		},
		"star": func() (*workload.Generated, error) {
			return workload.Star(workload.StarSpec{Windows: []interval.Window{
				interval.New(0, 100*units.Pico),
				interval.New(50*units.Pico, 150*units.Pico),
				interval.New(120*units.Pico, 200*units.Pico),
			}})
		},
		"differential": func() (*workload.Generated, error) {
			return workload.Differential(workload.DifferentialSpec{Pairs: 3})
		},
	}
}

func bindFixture(t *testing.T, mk fixtureMaker) (*bind.Design, core.Options) {
	t.Helper()
	g, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	return b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()}
}

// buildFrom adapts a fixture maker into the per-engine design builder an
// in-process worker wants.
func buildFrom(mk fixtureMaker) BuildDesign {
	return func(ctx context.Context) (*bind.Design, error) {
		g, err := mk()
		if err != nil {
			return nil, err
		}
		return g.Bind(liberty.Generic())
	}
}

func inprocWorkers(mk fixtureMaker, opts core.Options, n int) []Worker {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = NewInProc(fmt.Sprintf("w%d", i), buildFrom(mk), opts)
	}
	return ws
}

// reportBytes serializes the noise and delay results the way snad exports
// them — the byte-identity oracle compares these, not internal structs.
func reportBytes(t *testing.T, noise *core.Result, delay *core.DelayResult) ([]byte, []byte) {
	t.Helper()
	var nb, db bytes.Buffer
	if err := report.WriteJSON(&nb, noise); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteDelayJSON(&db, delay); err != nil {
		t.Fatal(err)
	}
	return nb.Bytes(), db.Bytes()
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	b, _ := bindFixture(t, fixtures()["fabric"])
	plan, err := core.BuildShardPlan(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 5} {
		a1, err := Partition(plan, shards, 42)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Partition(plan, shards, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("partition with %d shards not deterministic", shards)
		}
		// Exact cover: every net owned exactly once.
		seen := make(map[string]int)
		for s, owned := range a1.Owned {
			for _, net := range owned {
				if _, dup := seen[net]; dup {
					t.Fatalf("net %s owned twice", net)
				}
				seen[net] = s
			}
		}
		if len(seen) != len(plan.Order) {
			t.Fatalf("%d shards: %d nets assigned, want %d", shards, len(seen), len(plan.Order))
		}
		for _, net := range plan.Feedback {
			if seen[net] != 0 {
				t.Fatalf("feedback net %s not pinned to shard 0", net)
			}
		}
		// Imports are exactly the cross-shard fanins.
		for s, imports := range a1.Imports {
			for _, net := range imports {
				if seen[net] == s {
					t.Fatalf("shard %d imports net %s it owns", s, net)
				}
			}
		}
	}
	// Different seeds may differ, but both must still cover.
	a3, err := Partition(plan, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, owned := range a3.Owned {
		n += len(owned)
	}
	if n != len(plan.Order) {
		t.Fatalf("seed 7: %d nets assigned, want %d", n, len(plan.Order))
	}
}

// TestDistributedMatchesSerial is the tentpole oracle: a healthy
// distributed run over in-process workers must produce byte-identical
// report JSON to single-process AnalyzeIterative, on every fixture, at
// several shard counts.
func TestDistributedMatchesSerial(t *testing.T) {
	for name, mk := range fixtures() {
		b, opts := bindFixture(t, mk)
		want, err := core.AnalyzeIterative(b, opts, 0)
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		wantNoise, wantDelay := reportBytes(t, want.Noise, want.Delay)
		for _, shards := range []int{2, 3} {
			got, err := Run(context.Background(), Config{
				B:       b,
				Opts:    opts,
				Workers: inprocWorkers(mk, opts, 3),
				Shards:  shards,
				Token:   fmt.Sprintf("%s-%d", name, shards),
			})
			if err != nil {
				t.Fatalf("%s/%d shards: distributed: %v", name, shards, err)
			}
			gotNoise, gotDelay := reportBytes(t, got.Noise, got.Delay)
			if !bytes.Equal(gotNoise, wantNoise) {
				t.Errorf("%s/%d shards: noise report differs from single-process\ngot:  %.600s\nwant: %.600s",
					name, shards, gotNoise, wantNoise)
			}
			if !bytes.Equal(gotDelay, wantDelay) {
				t.Errorf("%s/%d shards: delay report differs from single-process\ngot:  %.600s\nwant: %.600s",
					name, shards, gotDelay, wantDelay)
			}
			if got.Rounds != want.Rounds || got.Converged != want.Converged ||
				got.Diverging != want.Diverging || got.DivergeReason != want.DivergeReason {
				t.Errorf("%s/%d shards: loop outcome (%d,%v,%v,%q) != serial (%d,%v,%v,%q)",
					name, shards, got.Rounds, got.Converged, got.Diverging, got.DivergeReason,
					want.Rounds, want.Converged, want.Diverging, want.DivergeReason)
			}
			if len(got.Padding) != len(want.Padding) {
				t.Errorf("%s/%d shards: %d padded nets != %d", name, shards, len(got.Padding), len(want.Padding))
			}
			for net, pad := range want.Padding {
				if got.Padding[net] != pad {
					t.Errorf("%s/%d shards: padding[%s]=%g != %g", name, shards, net, got.Padding[net], pad)
				}
			}
		}
	}
}

// TestWorkerFaultsStaySound drives the coordinator through the whole
// injected-fault matrix. Every run must terminate with a sound report:
// never an error, and never a net reported less noisy than the
// single-process truth (degradation may only add pessimism).
func TestWorkerFaultsStaySound(t *testing.T) {
	mk := fixtures()["bus"]
	b, opts := bindFixture(t, mk)
	want, err := core.AnalyzeIterative(b, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantNoise, wantDelay := reportBytes(t, want.Noise, want.Delay)

	specs := []string{
		"drop:eval",
		"drop:round",
		"delay:eval:2",
		"error:init",
		"error:eval",
		"error:collect",
		"partial:eval",
		"partial:round",
		"kill:eval:2",
		"kill:round",
		"kill:delay",
		"kill:init",
		"error:eval:*,error:round:*,error:delay:*,error:collect:*,error:init:*",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			faults, err := workload.ParseWorkerFaults(spec)
			if err != nil {
				t.Fatal(err)
			}
			workers := inprocWorkers(mk, opts, 3)
			workers[1] = NewFaultyWorker(workers[1], faults)
			got, err := Run(context.Background(), Config{
				B:               b,
				Opts:            opts,
				Workers:         workers,
				Shards:          3,
				Token:           "chaos",
				DispatchTimeout: 30 * time.Millisecond,
				Attempts:        2,
			})
			if err != nil {
				t.Fatalf("run failed under %q (must degrade, not fail): %v", spec, err)
			}
			if len(got.Noise.Nets) != len(want.Noise.Nets) {
				t.Fatalf("%d nets reported, want %d", len(got.Noise.Nets), len(want.Noise.Nets))
			}
			for net, wn := range want.Noise.Nets {
				gn := got.Noise.Nets[net]
				if gn == nil {
					t.Fatalf("net %s missing from degraded report", net)
				}
				if gn.WorstPeak()+1e-12 < wn.WorstPeak() {
					t.Errorf("net %s peak %g below single-process %g — degraded run lost pessimism",
						net, gn.WorstPeak(), wn.WorstPeak())
				}
			}
			if len(got.AbandonedShards) > 0 {
				if !got.Degraded || len(got.Noise.Diags) == 0 {
					t.Fatalf("abandoned shards %v but no degradation recorded", got.AbandonedShards)
				}
				if got.Noise.Stats.DegradedNets != len(got.Noise.Diags) {
					t.Errorf("DegradedNets %d != %d diags", got.Noise.Stats.DegradedNets, len(got.Noise.Diags))
				}
			} else if !got.Degraded {
				// Fully recovered (retries or re-hosting absorbed the fault):
				// the report must be byte-identical to single-process.
				gotNoise, gotDelay := reportBytes(t, got.Noise, got.Delay)
				if !bytes.Equal(gotNoise, wantNoise) || !bytes.Equal(gotDelay, wantDelay) {
					t.Errorf("recovered run differs from single-process report")
				}
			}
		})
	}
}

// TestAllWorkersLost pins the worst case: every worker dies, every shard
// degrades, and the run still terminates with the conservative full-rail
// report rather than an error.
func TestAllWorkersLost(t *testing.T) {
	mk := fixtures()["star"]
	b, opts := bindFixture(t, mk)
	faults, err := workload.ParseWorkerFaults("kill:eval")
	if err != nil {
		t.Fatal(err)
	}
	faults2, err := workload.ParseWorkerFaults("kill:eval")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), Config{
		B:    b,
		Opts: opts,
		Workers: []Worker{
			NewFaultyWorker(NewInProc("w0", buildFrom(mk), opts), faults),
			NewFaultyWorker(NewInProc("w1", buildFrom(mk), opts), faults2),
		},
		Shards: 2,
		Token:  "doom",
	})
	if err != nil {
		t.Fatalf("total worker loss must degrade, not fail: %v", err)
	}
	if !got.Degraded || len(got.AbandonedShards) == 0 {
		t.Fatalf("expected a degraded outcome, got %+v", got)
	}
	vdd := core.EffectiveVdd(b, opts)
	for net, nn := range got.Noise.Nets {
		if nn.WorstPeak() != vdd {
			t.Errorf("net %s peak %g, want full-rail %g", net, nn.WorstPeak(), vdd)
		}
	}
	if got.Noise.Stats.DegradedNets != len(got.Noise.Nets) {
		t.Errorf("DegradedNets %d, want %d", got.Noise.Stats.DegradedNets, len(got.Noise.Nets))
	}
}

// TestCheckpointResume seeds a checkpoint equal to round 1 of the serial
// run and verifies a resumed distributed run lands on the serial
// fixpoint: same padding, rounds, violations, and per-net combinations
// (execution statistics legitimately differ — fresh engines re-evaluate
// more than persistent ones).
func TestCheckpointResume(t *testing.T) {
	mk := fixtures()["bus"]
	b, opts := bindFixture(t, mk)
	full, err := core.AnalyzeIterative(b, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rounds < 2 {
		t.Fatalf("fixture converges in %d rounds; resume needs >= 2", full.Rounds)
	}
	one, err := core.AnalyzeIterative(b, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	ck := &FileCheckpointer{Dir: t.TempDir()}
	growth := one.MaxPadding()
	cp := &Checkpoint{Token: "resume", Round: 1, Padding: padEntries(one.Padding), PrevGrowth: &growth}
	if err := ck.Save(cp); err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), Config{
		B:            b,
		Opts:         opts,
		Workers:      inprocWorkers(mk, opts, 2),
		Shards:       2,
		Token:        "resume",
		Checkpointer: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resumed {
		t.Fatal("run did not resume from the checkpoint")
	}
	if got.Rounds != full.Rounds || got.Converged != full.Converged {
		t.Fatalf("resumed run ended (%d,%v), serial (%d,%v)", got.Rounds, got.Converged, full.Rounds, full.Converged)
	}
	if len(got.Padding) != len(full.Padding) {
		t.Fatalf("resumed padding has %d nets, serial %d", len(got.Padding), len(full.Padding))
	}
	for net, pad := range full.Padding {
		if math.Abs(got.Padding[net]-pad) > 0 {
			t.Errorf("padding[%s]=%g != %g", net, got.Padding[net], pad)
		}
	}
	// Result content (not execution stats) must match the serial fixpoint.
	got.Noise.Stats = core.Stats{}
	want := *full.Noise
	want.Stats = core.Stats{}
	gotNoise, gotDelay := reportBytes(t, got.Noise, got.Delay)
	wantNoise, wantDelay := reportBytes(t, &want, full.Delay)
	if !bytes.Equal(gotNoise, wantNoise) {
		t.Errorf("resumed noise report differs from serial fixpoint")
	}
	if !bytes.Equal(gotDelay, wantDelay) {
		t.Errorf("resumed delay report differs from serial fixpoint")
	}
	// The completed run clears its checkpoint.
	if cp, err := ck.Load("resume"); err != nil || cp != nil {
		t.Fatalf("checkpoint not cleared after completion: %v %v", cp, err)
	}
}

// TestRunnerEvalMemo pins the retry-exactness contract: re-dispatching an
// eval Seq replays the accumulated updates instead of losing them.
func TestRunnerEvalMemo(t *testing.T) {
	b, opts := bindFixture(t, fixtures()["star"])
	plan, err := core.BuildShardPlan(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(func(ctx context.Context, owned []string, padding map[string]float64) (*core.ShardEngine, error) {
		return core.NewShardEngine(ctx, b, opts, owned, padding)
	})
	ctx := context.Background()
	if err := r.Init(ctx, &InitRequest{Owned: plan.Order}); err != nil {
		t.Fatal(err)
	}
	// Find a wave that actually commits something on the first pass.
	var first *EvalResponse
	wave, seq := -1, 0
	for w := range plan.Waves {
		seq++
		out, err := r.Eval(ctx, &EvalRequest{Seq: seq, Wave: w})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Updates) > 0 {
			first, wave = out, w
			break
		}
	}
	if first == nil {
		t.Fatal("no wave committed anything; fixture too quiet for this test")
	}
	replay, err := r.Eval(ctx, &EvalRequest{Seq: seq, Wave: wave})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, replay) {
		t.Fatal("duplicate Seq did not replay the memoized updates")
	}
	// A new Seq re-evaluates: at the fixpoint nothing changes, so the
	// response is empty rather than a replay.
	fresh, err := r.Eval(ctx, &EvalRequest{Seq: seq + 1, Wave: wave})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Updates) != 0 {
		t.Fatalf("fresh Seq at fixpoint committed %d updates, want 0", len(fresh.Updates))
	}
}
