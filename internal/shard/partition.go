package shard

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// Assignment maps every analyzed net to its owning shard and precomputes
// each shard's import set.
type Assignment struct {
	// Shards is the effective shard count (clamped to the net count).
	Shards int
	// Seed is the partitioning seed the assignment was grown from.
	Seed int64
	// Owner maps net name to shard id.
	Owner map[string]int
	// Owned lists each shard's nets, sorted.
	Owned [][]string
	// Imports lists, per shard, the fanin nets of its owned nets that are
	// owned elsewhere, sorted — the boundary combinations the shard must
	// receive before (re)evaluating a wave.
	Imports [][]string
	// CutEdges counts affinity-graph edges crossing shard boundaries — a
	// partition-quality metric for logs and tests.
	CutEdges int
}

// Partition grows a deterministic partition of the victim set over the
// plan's affinity graph: greedy BFS regions seeded pseudo-randomly (same
// design + same seed + same shard count → identical assignment, on any
// host), balanced to ceil(n/k) nets per shard. Feedback nets are pinned to
// shard 0 — the serial Gauss–Seidel wave reads same-wave combinations, so
// splitting it across shards would break the serial-identical guarantee.
func Partition(plan *core.ShardPlan, shards int, seed int64) (*Assignment, error) {
	n := len(plan.Order)
	if n == 0 {
		return nil, fmt.Errorf("shard: nothing to partition (no analyzable nets)")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	asn := &Assignment{
		Shards: shards,
		Seed:   seed,
		Owner:  make(map[string]int, n),
		Owned:  make([][]string, shards),
	}

	// Feedback nets first: all pinned to shard 0, over quota if need be.
	for _, net := range plan.Feedback {
		asn.Owner[net] = 0
	}
	free := make([]string, 0, n)
	for _, net := range plan.Order {
		if _, pinned := asn.Owner[net]; !pinned {
			free = append(free, net)
		}
	}
	sort.Strings(free)
	unassigned := make(map[string]bool, len(free))
	for _, net := range free {
		unassigned[net] = true
	}

	// Quotas: distribute the free nets evenly; shard 0's pinned feedback
	// nets ride on top of its quota.
	quota := make([]int, shards)
	for i := range free {
		quota[i%shards]++
	}

	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < shards; s++ {
		grown := 0
		var queue []string
		for grown < quota[s] {
			if len(queue) == 0 {
				// Re-seed the region pseudo-randomly among the remaining
				// nets (deterministic under the run seed). Rebuilding the
				// sorted remainder keeps selection order-independent of
				// map iteration.
				rest := make([]string, 0, len(unassigned))
				for _, net := range free {
					if unassigned[net] {
						rest = append(rest, net)
					}
				}
				if len(rest) == 0 {
					break
				}
				queue = append(queue, rest[rng.Intn(len(rest))])
			}
			net := queue[0]
			queue = queue[1:]
			if !unassigned[net] {
				continue
			}
			delete(unassigned, net)
			asn.Owner[net] = s
			grown++
			// Grow along affinity edges, nearest (sorted) first.
			queue = append(queue, plan.Adjacency[net]...)
		}
	}
	// Anything left (only possible if every quota filled early, which the
	// accounting above prevents — kept as a safety net) goes round-robin.
	rest := make([]string, 0, len(unassigned))
	for _, net := range free {
		if unassigned[net] {
			rest = append(rest, net)
		}
	}
	for i, net := range rest {
		asn.Owner[net] = i % shards
	}

	for _, net := range plan.Order {
		s := asn.Owner[net]
		asn.Owned[s] = append(asn.Owned[s], net)
	}
	for s := range asn.Owned {
		sort.Strings(asn.Owned[s])
	}
	asn.Imports = make([][]string, shards)
	for s := range asn.Imports {
		seen := make(map[string]bool)
		var imports []string
		for _, net := range asn.Owned[s] {
			for _, fanin := range plan.Fanin[net] {
				if asn.Owner[fanin] != s && !seen[fanin] {
					seen[fanin] = true
					imports = append(imports, fanin)
				}
			}
		}
		sort.Strings(imports)
		asn.Imports[s] = imports
	}
	for net, neighbours := range plan.Adjacency {
		for _, other := range neighbours {
			if net < other && asn.Owner[net] != asn.Owner[other] {
				asn.CutEdges++
			}
		}
	}
	return asn, nil
}

// ImportersOf builds the reverse boundary index: for every net, the shards
// (other than its owner) that import it. The coordinator uses it to fan a
// committed update out to exactly the shards that read it.
func (a *Assignment) ImportersOf() map[string][]int {
	out := make(map[string][]int)
	for s, imports := range a.Imports {
		for _, net := range imports {
			out[net] = append(out[net], s)
		}
	}
	return out
}
