// Package shard implements fault-tolerant distributed noise analysis: a
// deterministic partitioner over the coupling/fanin affinity graph, a
// runner that drives one partition's core.ShardEngine behind a small op
// protocol, worker transports (in-process and, via internal/client, remote
// snad daemons), and a coordinator that drives the global noise/delay
// fixpoint across workers, exchanging boundary combinations wave by wave.
//
// The contract: a healthy distributed run is byte-identical (at the report
// JSON level) to the single-process core.AnalyzeIterative; a run that loses
// workers reassigns their shards to survivors and, when a shard is
// irrecoverable, substitutes the conservative full-rail bound for its nets
// with Diag{Stage: "shard"} records — a sound report, never a hang or a
// hard failure.
package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
)

// Protocol operations, in the order a run issues them. They double as the
// op names workload.WorkerFaults rules select on.
const (
	OpInit    = "init"
	OpEval    = "eval"
	OpRound   = "round"
	OpDelay   = "delay"
	OpCollect = "collect"
	OpClose   = "close"
	OpPing    = "ping"
)

// ErrEngineBroken is returned by a runner whose engine was left in an
// undefined state (a padding update died halfway). The coordinator
// recovers by re-initializing the shard — on the same worker or another —
// from its authoritative state; the worker itself is not suspect.
var ErrEngineBroken = errors.New("shard: engine broken, re-init required")

// FatalError wraps a deterministic analysis failure (a fail-fast
// evaluation error): retrying it anywhere reproduces it, so the
// coordinator aborts the run with it instead of burning the retry budget.
type FatalError struct{ Err error }

func (e *FatalError) Error() string { return e.Err.Error() }
func (e *FatalError) Unwrap() error { return e.Err }

// Float JSON round-trips are exact (encoding/json emits the shortest
// representation that parses back to the same float64), so the wire forms
// below preserve bit-identical results across the HTTP transport. The only
// values float64 JSON cannot carry are NaN and the infinities; the wire
// types encode those explicitly: a Combined's At is NaN when no events
// combine (pointer, nil = NaN), and a Window distinguishes the empty
// window (Lo > Hi) from infinite bounds (nil Lo = -Inf, nil Hi = +Inf).

// WindowWire is the wire form of interval.Window.
type WindowWire struct {
	Empty bool     `json:"empty,omitempty"`
	Lo    *float64 `json:"lo,omitempty"`
	Hi    *float64 `json:"hi,omitempty"`
}

func windowToWire(w interval.Window) WindowWire {
	if w.IsEmpty() {
		return WindowWire{Empty: true}
	}
	var out WindowWire
	if !math.IsInf(w.Lo, -1) {
		lo := w.Lo
		out.Lo = &lo
	}
	if !math.IsInf(w.Hi, 1) {
		hi := w.Hi
		out.Hi = &hi
	}
	return out
}

func (w WindowWire) window() interval.Window {
	if w.Empty {
		return interval.Empty()
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	if w.Lo != nil {
		lo = *w.Lo
	}
	if w.Hi != nil {
		hi = *w.Hi
	}
	return interval.Window{Lo: lo, Hi: hi}
}

func setToWire(s interval.Set) []WindowWire {
	ws := s.Windows()
	out := make([]WindowWire, len(ws))
	for i, w := range ws {
		out[i] = windowToWire(w)
	}
	return out
}

func setFromWire(ws []WindowWire) interval.Set {
	wins := make([]interval.Window, len(ws))
	for i, w := range ws {
		wins[i] = w.window()
	}
	return interval.NewSet(wins...)
}

func floatToWire(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

func floatFromWire(v *float64) float64 {
	if v == nil {
		return math.NaN()
	}
	return *v
}

// EventWire is the wire form of core.Event.
type EventWire struct {
	Peak   float64    `json:"peak"`
	Width  float64    `json:"width"`
	Window WindowWire `json:"window"`
	Source string     `json:"source"`
}

func eventToWire(e core.Event) EventWire {
	return EventWire{Peak: e.Peak, Width: e.Width, Window: windowToWire(e.Window), Source: e.Source}
}

func (e EventWire) event() core.Event {
	return core.Event{Peak: e.Peak, Width: e.Width, Window: e.Window.window(), Source: e.Source}
}

func eventsToWire(es []core.Event) []EventWire {
	if es == nil {
		return nil
	}
	out := make([]EventWire, len(es))
	for i, e := range es {
		out[i] = eventToWire(e)
	}
	return out
}

func eventsFromWire(es []EventWire) []core.Event {
	if es == nil {
		return nil
	}
	out := make([]core.Event, len(es))
	for i, e := range es {
		out[i] = e.event()
	}
	return out
}

// CombinedWire is the wire form of core.Combined, at full fidelity —
// members and member events included, because the final report renders
// them.
type CombinedWire struct {
	Peak         float64     `json:"peak"`
	Width        float64     `json:"width"`
	Window       WindowWire  `json:"window"`
	At           *float64    `json:"at"`
	Members      []string    `json:"members,omitempty"`
	MemberEvents []EventWire `json:"member_events,omitempty"`
}

func combToWire(c core.Combined) CombinedWire {
	return CombinedWire{
		Peak:         c.Peak,
		Width:        c.Width,
		Window:       windowToWire(c.Window),
		At:           floatToWire(c.At),
		Members:      c.Members,
		MemberEvents: eventsToWire(c.MemberEvents),
	}
}

func (c CombinedWire) comb() core.Combined {
	return core.Combined{
		Peak:         c.Peak,
		Width:        c.Width,
		Window:       c.Window.window(),
		At:           floatFromWire(c.At),
		Members:      c.Members,
		MemberEvents: eventsFromWire(c.MemberEvents),
	}
}

func combsToWire(c [2]core.Combined) [2]CombinedWire {
	return [2]CombinedWire{combToWire(c[0]), combToWire(c[1])}
}

func combsFromWire(c [2]CombinedWire) [2]core.Combined {
	return [2]core.Combined{c[0].comb(), c[1].comb()}
}

// NetComb carries one net's committed combination — the boundary-exchange
// and restore currency of the protocol.
type NetComb struct {
	Net  string          `json:"net"`
	Comb [2]CombinedWire `json:"comb"`
}

// NetNoiseWire is a full per-net result (collect only).
type NetNoiseWire struct {
	Net    string          `json:"net"`
	Events [2][]EventWire  `json:"events"`
	Comb   [2]CombinedWire `json:"comb"`
}

func netNoiseToWire(nn *core.NetNoise) NetNoiseWire {
	return NetNoiseWire{
		Net:    nn.Net,
		Events: [2][]EventWire{eventsToWire(nn.Events[0]), eventsToWire(nn.Events[1])},
		Comb:   combsToWire(nn.Comb),
	}
}

func (w NetNoiseWire) netNoise() *core.NetNoise {
	return &core.NetNoise{
		Net:    w.Net,
		Events: [2][]core.Event{eventsFromWire(w.Events[0]), eventsFromWire(w.Events[1])},
		Comb:   combsFromWire(w.Comb),
	}
}

// ViolationWire is the wire form of core.Violation.
type ViolationWire struct {
	Net      string   `json:"net"`
	Receiver string   `json:"receiver"`
	Kind     int      `json:"kind"`
	Peak     float64  `json:"peak"`
	Width    float64  `json:"width"`
	Limit    float64  `json:"limit"`
	Slack    float64  `json:"slack"`
	At       *float64 `json:"at"`
	Members  []string `json:"members,omitempty"`
}

func violationToWire(v core.Violation) ViolationWire {
	return ViolationWire{
		Net: v.Net, Receiver: v.Receiver, Kind: int(v.Kind),
		Peak: v.Peak, Width: v.Width, Limit: v.Limit, Slack: v.Slack,
		At: floatToWire(v.At), Members: v.Members,
	}
}

func (v ViolationWire) violation() core.Violation {
	return core.Violation{
		Net: v.Net, Receiver: v.Receiver, Kind: core.Kind(v.Kind),
		Peak: v.Peak, Width: v.Width, Limit: v.Limit, Slack: v.Slack,
		At: floatFromWire(v.At), Members: v.Members,
	}
}

// SlackWire is the wire form of core.ReceiverSlack.
type SlackWire struct {
	Net      string  `json:"net"`
	Receiver string  `json:"receiver"`
	Kind     int     `json:"kind"`
	Peak     float64 `json:"peak"`
	Limit    float64 `json:"limit"`
	Slack    float64 `json:"slack"`
}

func slackToWire(s core.ReceiverSlack) SlackWire {
	return SlackWire{Net: s.Net, Receiver: s.Receiver, Kind: int(s.Kind), Peak: s.Peak, Limit: s.Limit, Slack: s.Slack}
}

func (s SlackWire) slack() core.ReceiverSlack {
	return core.ReceiverSlack{Net: s.Net, Receiver: s.Receiver, Kind: core.Kind(s.Kind), Peak: s.Peak, Limit: s.Limit, Slack: s.Slack}
}

// ImpactWire is the wire form of core.DelayImpact.
type ImpactWire struct {
	Net          string       `json:"net"`
	Rise         bool         `json:"rise"`
	VictimWindow []WindowWire `json:"victim_window"`
	NoisePeak    float64      `json:"noise_peak"`
	Delta        float64      `json:"delta"`
	At           *float64     `json:"at"`
	Members      []string     `json:"members,omitempty"`
}

func impactToWire(im core.DelayImpact) ImpactWire {
	return ImpactWire{
		Net: im.Net, Rise: im.Rise, VictimWindow: setToWire(im.VictimWindow),
		NoisePeak: im.NoisePeak, Delta: im.Delta, At: floatToWire(im.At), Members: im.Members,
	}
}

func (im ImpactWire) impact() core.DelayImpact {
	return core.DelayImpact{
		Net: im.Net, Rise: im.Rise, VictimWindow: setFromWire(im.VictimWindow),
		NoisePeak: im.NoisePeak, Delta: im.Delta, At: floatFromWire(im.At), Members: im.Members,
	}
}

// DiagWire is the wire form of core.Diag; the error crosses as its message.
type DiagWire struct {
	Net      string `json:"net"`
	Stage    string `json:"stage"`
	Err      string `json:"err"`
	Degraded bool   `json:"degraded"`
}

func diagToWire(d core.Diag) DiagWire {
	msg := ""
	if d.Err != nil {
		msg = d.Err.Error()
	}
	return DiagWire{Net: d.Net, Stage: d.Stage, Err: msg, Degraded: d.Degraded}
}

func (d DiagWire) diag() core.Diag {
	return core.Diag{Net: d.Net, Stage: d.Stage, Err: errors.New(d.Err), Degraded: d.Degraded}
}

// PadEntry is one net's absolute window padding, seconds.
type PadEntry struct {
	Net string  `json:"net"`
	Pad float64 `json:"pad"`
}

// OptionsSpec is the serializable subset of analysis options a remote
// worker needs to rebuild the coordinator's engine configuration. It
// mirrors the snad session options.
type OptionsSpec struct {
	Mode             string  `json:"mode,omitempty"`
	Threshold        float64 `json:"threshold,omitempty"`
	NoPropagation    bool    `json:"no_propagation,omitempty"`
	LogicCorrelation bool    `json:"logic_correlation,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	FailFast         bool    `json:"fail_fast,omitempty"`
	MaxIter          int     `json:"max_iter,omitempty"`
}

// DesignSpec ships the design sources to a remote worker so it can bind
// and analyze the same inputs the coordinator holds. In-process workers
// ignore it (they carry their own BuildDesign source).
type DesignSpec struct {
	Netlist string      `json:"netlist,omitempty"`
	Verilog string      `json:"verilog,omitempty"`
	SPEF    string      `json:"spef,omitempty"`
	Liberty string      `json:"liberty,omitempty"`
	Timing  string      `json:"timing,omitempty"`
	Options OptionsSpec `json:"options"`
}

// InitRequest builds (or rebuilds) one shard's engine on a worker: the
// owned nets, the cumulative padding to seed timing with, and the
// authoritative combinations to restore (empty on the first init, the
// coordinator's committed state on a mid-run rebuild).
type InitRequest struct {
	Token   string      `json:"token"`
	Shard   int         `json:"shard"`
	Owned   []string    `json:"owned"`
	Padding []PadEntry  `json:"padding,omitempty"`
	Restore []NetComb   `json:"restore,omitempty"`
	Design  *DesignSpec `json:"design,omitempty"`
}

// EvalRequest evaluates the owned slice of one wave. Seq increases with
// every distinct wave dispatch; a runner that sees a Seq twice returns the
// accumulated response instead of re-evaluating, which is what makes a
// retried dispatch after a lost response exact. Boundary carries the fanin
// combinations committed on other shards since this shard's last eval.
type EvalRequest struct {
	Token    string    `json:"token"`
	Shard    int       `json:"shard"`
	Seq      int       `json:"seq"`
	Wave     int       `json:"wave"`
	Boundary []NetComb `json:"boundary,omitempty"`
}

// EvalResponse lists the nets whose committed combination changed.
type EvalResponse struct {
	Updates []NetComb `json:"updates,omitempty"`
}

// RoundRequest applies one round of padding growth (absolute values).
type RoundRequest struct {
	Token   string     `json:"token"`
	Shard   int        `json:"shard"`
	Changed []PadEntry `json:"changed"`
}

// DelayRequest runs the delta-delay pass over the shard's owned nets.
type DelayRequest struct {
	Token string `json:"token"`
	Shard int    `json:"shard"`
}

// DelayResponse returns the shard's impacts in evaluation order.
type DelayResponse struct {
	Impacts []ImpactWire `json:"impacts,omitempty"`
}

// CollectRequest fetches the shard's slice of the final result.
type CollectRequest struct {
	Token string `json:"token"`
	Shard int    `json:"shard"`
}

// CollectResponse is the shard's final contribution: full per-net results,
// canonical-order violations and slacks, diagnostics, and additive stats.
type CollectResponse struct {
	Nets       []NetNoiseWire  `json:"nets"`
	Violations []ViolationWire `json:"violations,omitempty"`
	Slacks     []SlackWire     `json:"slacks,omitempty"`
	Diags      []DiagWire      `json:"diags,omitempty"`
	Pairs      int             `json:"pairs"`
	Filtered   int             `json:"filtered"`
	Propagated int             `json:"propagated"`
}

// CloseRequest drops one shard's engine (or, with Shard -1, every engine
// of the token) on a worker. Best-effort cleanup.
type CloseRequest struct {
	Token string `json:"token"`
	Shard int    `json:"shard"`
}

// routed is implemented by every request so the coordinator can stamp the
// run token and shard id uniformly.
type routed interface{ setRoute(token string, shard int) }

func (r *InitRequest) setRoute(t string, s int)    { r.Token, r.Shard = t, s }
func (r *EvalRequest) setRoute(t string, s int)    { r.Token, r.Shard = t, s }
func (r *RoundRequest) setRoute(t string, s int)   { r.Token, r.Shard = t, s }
func (r *DelayRequest) setRoute(t string, s int)   { r.Token, r.Shard = t, s }
func (r *CollectRequest) setRoute(t string, s int) { r.Token, r.Shard = t, s }
func (r *CloseRequest) setRoute(t string, s int)   { r.Token, r.Shard = t, s }

func padEntries(padding map[string]float64) []PadEntry {
	if len(padding) == 0 {
		return nil
	}
	nets := make([]string, 0, len(padding))
	for net := range padding {
		nets = append(nets, net)
	}
	// Sorted so the wire bytes (and worker-side application order) are
	// deterministic.
	sort.Strings(nets)
	out := make([]PadEntry, len(nets))
	for i, net := range nets {
		out[i] = PadEntry{Net: net, Pad: padding[net]}
	}
	return out
}

func padMap(entries []PadEntry) map[string]float64 {
	out := make(map[string]float64, len(entries))
	for _, e := range entries {
		out[e.Net] = e.Pad
	}
	return out
}

// badRequestError marks a malformed protocol request (unknown op, missing
// engine, out-of-range wave) — a coordinator bug or a stale worker, not a
// transient fault.
func badRequestError(format string, args ...any) error {
	return &FatalError{Err: fmt.Errorf(format, args...)}
}
