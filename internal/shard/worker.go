package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/workload"
)

// Worker is one execution backend the coordinator can host shards on. The
// two implementations are InProc (a goroutine sharing the coordinator's
// bound design) and client.ShardWorker (a remote snad process reached over
// HTTP). Do executes one protocol op: req and resp are the matching
// *XxxRequest / *XxxResponse wire pairs (resp nil for ops without a
// response body).
type Worker interface {
	// Name identifies the worker in logs, diags, and health tracking.
	Name() string
	// Do executes op with req, decoding into resp when non-nil. Errors
	// are classified by the coordinator: FatalError aborts the run,
	// ErrEngineBroken forces a re-init on the same worker, anything else
	// (timeouts, transport loss) marks the worker dead.
	Do(ctx context.Context, op string, req, resp any) error
	// Ping probes liveness without touching any shard state.
	Ping(ctx context.Context) error
}

// BuildDesign supplies a worker's bound design. A bound design is
// immutable after binding apart from its internal guarded caches
// (levelization, RC analyses), so one design is shared by every shard
// engine this worker hosts: the in-process worker calls build once and
// reuses the result across its shard inits, mirroring a remote snad
// worker caching one parsed design per run token. Per-engine mutable
// state (timing annotations, window padding, noise state) lives in the
// engine itself. build must produce an identical design every call —
// the coordinator's byte-identity guarantee rides on every engine
// seeing the same inputs.
type BuildDesign func(ctx context.Context) (*bind.Design, error)

// InProc is a worker running in the coordinator's own process, hosting
// one Runner per assigned shard, all sharing one bound design.
type InProc struct {
	name  string
	build BuildDesign
	opts  core.Options

	mu      sync.Mutex
	runners map[int]*Runner
	// b is the worker's shared bound design, built on first shard init.
	b *bind.Design
}

// NewInProc returns an in-process worker that builds its design once, on
// the first shard init, and shares it across every engine it hosts. opts
// is copied per engine.
func NewInProc(name string, build BuildDesign, opts core.Options) *InProc {
	return &InProc{name: name, build: build, opts: opts, runners: make(map[int]*Runner)}
}

// Name implements Worker.
func (w *InProc) Name() string { return w.name }

// Ping implements Worker; an in-process worker is alive by construction.
func (w *InProc) Ping(ctx context.Context) error { return ctx.Err() }

// design returns the worker's shared bound design, building it on first
// use. Only a successful build is cached — a cancelled or failed build
// must stay retryable. Concurrent first inits may build twice; the first
// store wins and the loser's copy is dropped (identical by contract).
func (w *InProc) design(ctx context.Context) (*bind.Design, error) {
	w.mu.Lock()
	b := w.b
	w.mu.Unlock()
	if b != nil {
		return b, nil
	}
	b, err := w.build(ctx)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if w.b == nil {
		w.b = b
	}
	b = w.b
	w.mu.Unlock()
	return b, nil
}

func (w *InProc) runner(shard int, create bool) *Runner {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, ok := w.runners[shard]
	if !ok && create {
		opts := w.opts
		r = NewRunner(func(ctx context.Context, owned []string, padding map[string]float64) (*core.ShardEngine, error) {
			b, err := w.design(ctx)
			if err != nil {
				return nil, err
			}
			return core.NewShardEngine(ctx, b, opts, owned, padding)
		})
		w.runners[shard] = r
	}
	return r
}

// Do implements Worker by dispatching to the shard's runner.
func (w *InProc) Do(ctx context.Context, op string, req, resp any) error {
	switch op {
	case OpInit:
		r, ok := req.(*InitRequest)
		if !ok {
			return badRequestError("shard: init wants *InitRequest, got %T", req)
		}
		return w.runner(r.Shard, true).Init(ctx, r)
	case OpEval:
		r, ok := req.(*EvalRequest)
		if !ok {
			return badRequestError("shard: eval wants *EvalRequest, got %T", req)
		}
		runner := w.runner(r.Shard, false)
		if runner == nil {
			return badRequestError("shard: eval on uninitialized shard %d", r.Shard)
		}
		out, err := runner.Eval(ctx, r)
		if err != nil {
			return err
		}
		*resp.(*EvalResponse) = *out
		return nil
	case OpRound:
		r, ok := req.(*RoundRequest)
		if !ok {
			return badRequestError("shard: round wants *RoundRequest, got %T", req)
		}
		runner := w.runner(r.Shard, false)
		if runner == nil {
			return badRequestError("shard: round on uninitialized shard %d", r.Shard)
		}
		return runner.Round(ctx, r)
	case OpDelay:
		r, ok := req.(*DelayRequest)
		if !ok {
			return badRequestError("shard: delay wants *DelayRequest, got %T", req)
		}
		runner := w.runner(r.Shard, false)
		if runner == nil {
			return badRequestError("shard: delay on uninitialized shard %d", r.Shard)
		}
		out, err := runner.Delay(ctx, r)
		if err != nil {
			return err
		}
		*resp.(*DelayResponse) = *out
		return nil
	case OpCollect:
		r, ok := req.(*CollectRequest)
		if !ok {
			return badRequestError("shard: collect wants *CollectRequest, got %T", req)
		}
		runner := w.runner(r.Shard, false)
		if runner == nil {
			return badRequestError("shard: collect on uninitialized shard %d", r.Shard)
		}
		out, err := runner.Collect(ctx, r)
		if err != nil {
			return err
		}
		*resp.(*CollectResponse) = *out
		return nil
	case OpClose:
		r, ok := req.(*CloseRequest)
		if !ok {
			return badRequestError("shard: close wants *CloseRequest, got %T", req)
		}
		w.mu.Lock()
		defer w.mu.Unlock()
		if r.Shard < 0 {
			for _, runner := range w.runners {
				runner.Close()
			}
			w.runners = make(map[int]*Runner)
			return nil
		}
		if runner := w.runners[r.Shard]; runner != nil {
			runner.Close()
			delete(w.runners, r.Shard)
		}
		return nil
	default:
		return badRequestError("shard: unknown op %q", op)
	}
}

// FaultyWorker wraps a Worker with a workload.WorkerFaults injector. It
// sits where the transport would fail in production: faults fire before
// the wrapped call (drop, delay, error, kill) or after it (partial — the
// op executed but its response was lost), and a kill is permanent.
type FaultyWorker struct {
	inner  Worker
	faults *workload.WorkerFaults

	mu     sync.Mutex
	killed bool
}

// NewFaultyWorker wraps w; a nil faults injector passes everything through.
func NewFaultyWorker(w Worker, faults *workload.WorkerFaults) *FaultyWorker {
	return &FaultyWorker{inner: w, faults: faults}
}

// Name implements Worker.
func (w *FaultyWorker) Name() string { return w.inner.Name() }

// Killed reports whether a kill fault has fired on this worker.
func (w *FaultyWorker) Killed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.killed
}

func (w *FaultyWorker) dead() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return fmt.Errorf("workload: worker %s is dead (killed by fault injection)", w.inner.Name())
	}
	return nil
}

// Do implements Worker, applying any armed fault for op around the call.
func (w *FaultyWorker) Do(ctx context.Context, op string, req, resp any) error {
	if err := w.dead(); err != nil {
		return err
	}
	act := w.faults.Intercept(op)
	switch {
	case act.Kill:
		w.mu.Lock()
		w.killed = true
		w.mu.Unlock()
		return fmt.Errorf("workload: worker %s died mid-%s (killed by fault injection)", w.inner.Name(), op)
	case act.Drop:
		<-ctx.Done()
		return ctx.Err()
	case act.Err != nil:
		return act.Err
	case act.Delay:
		select {
		case <-time.After(workload.WorkerFaultDelay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	err := w.inner.Do(ctx, op, req, resp)
	if act.Partial {
		// The op ran (and may have mutated shard state) but the response
		// never made it back. Retries must cope with the half-applied op.
		if err == nil {
			err = &workload.InjectedWorkerFault{Kind: "partial", Op: op}
		}
	}
	return err
}

// Ping implements Worker.
func (w *FaultyWorker) Ping(ctx context.Context) error {
	if err := w.dead(); err != nil {
		return err
	}
	act := w.faults.Intercept(OpPing)
	switch {
	case act.Kill:
		w.mu.Lock()
		w.killed = true
		w.mu.Unlock()
		return fmt.Errorf("workload: worker %s died on ping (killed by fault injection)", w.inner.Name())
	case act.Drop:
		<-ctx.Done()
		return ctx.Err()
	case act.Err != nil:
		return act.Err
	}
	return w.inner.Ping(ctx)
}
