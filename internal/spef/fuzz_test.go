package spef

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// FuzzParse hammers the SPEF reader with mutated inputs. The contract
// under fuzz: never panic, never hang, and every rejection is a
// positioned error (contains "line N") so users can find the problem in
// multi-megabyte extractor output. Accepted inputs must survive a Write
// round trip, since the workload generator and the snad service both
// re-serialize parsed parasitics.
func FuzzParse(f *testing.F) {
	seed, err := os.ReadFile("../../testdata/bus4.spef")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add("*SPEF \"v\"\n*DESIGN \"d\"\n*D_NET n 1e-15\n*CONN\n*P n O\n*CAP\n1 n:1 1e-15\n*END\n")
	f.Add("*NAME_MAP\n*1 very/long/name\n*D_NET *1 2e-15\n*CAP\n1 *1:1 *1:2 1e-15\n*END\n")
	f.Add("*D_NET a 1\n") // unterminated
	f.Add("*C_UNIT 1 PF\n*R_UNIT 1 KOHM\n*T_UNIT 1 NS\n")
	f.Add("*CAP\n")        // section outside net
	f.Add("1 a b c d e\n") // junk
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(strings.NewReader(src))
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error without a line number: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
	})
}
