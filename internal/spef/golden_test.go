package spef

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"testing/iotest"
)

// parasiticsEqual fails unless the two databases render identically and
// agree net by net, entry by entry, in file order.
func parasiticsEqual(t *testing.T, got, want *Parasitics) {
	t.Helper()
	if got.Design != want.Design {
		t.Fatalf("design %q != %q", got.Design, want.Design)
	}
	if got.NumNets() != want.NumNets() {
		t.Fatalf("net count %d != %d", got.NumNets(), want.NumNets())
	}
	var gw, ww bytes.Buffer
	if err := Write(&gw, got); err != nil {
		t.Fatal(err)
	}
	if err := Write(&ww, want); err != nil {
		t.Fatal(err)
	}
	if gw.String() != ww.String() {
		t.Fatalf("spef text differs:\n--- got ---\n%s\n--- want ---\n%s", gw.String(), ww.String())
	}
	wantNets := want.Nets()
	for i, gn := range got.Nets() {
		wn := wantNets[i]
		if gn.Name != wn.Name || gn.TotalCap != wn.TotalCap ||
			len(gn.Conns) != len(wn.Conns) || len(gn.Caps) != len(wn.Caps) || len(gn.Ress) != len(wn.Ress) {
			t.Fatalf("net %q summary differs", gn.Name)
		}
		for j := range gn.Conns {
			if gn.Conns[j] != wn.Conns[j] {
				t.Fatalf("net %q conn %d: %+v != %+v", gn.Name, j, gn.Conns[j], wn.Conns[j])
			}
		}
		for j := range gn.Caps {
			if gn.Caps[j] != wn.Caps[j] {
				t.Fatalf("net %q cap %d: %+v != %+v", gn.Name, j, gn.Caps[j], wn.Caps[j])
			}
		}
		for j := range gn.Ress {
			if gn.Ress[j] != wn.Ress[j] {
				t.Fatalf("net %q res %d: %+v != %+v", gn.Name, j, gn.Ress[j], wn.Ress[j])
			}
		}
	}
}

// bigSource synthesizes a SPEF with enough sections to cross several
// worker batches, exercising name-map expansion on every net.
func bigSource(nets int) string {
	var b strings.Builder
	b.WriteString("*SPEF \"test\"\n*DESIGN \"big\"\n*T_UNIT 1 NS\n*C_UNIT 1 FF\n*R_UNIT 1 KOHM\n")
	b.WriteString("*NAME_MAP\n")
	for i := 0; i < nets; i++ {
		fmt.Fprintf(&b, "*%d big/net_%d\n", i+1, i)
	}
	for i := 0; i < nets; i++ {
		fmt.Fprintf(&b, "*D_NET *%d 4.0\n*CONN\n*I inst%d:Y O\n*I inst%d:A I\n*CAP\n", i+1, i, i+1)
		fmt.Fprintf(&b, "1 *%d:1 1.5\n", i+1)
		if i+1 < nets {
			fmt.Fprintf(&b, "2 *%d:2 *%d:1 0.5\n", i+1, i+2)
		}
		fmt.Fprintf(&b, "*RES\n1 *%d:1 *%d:2 0.2\n*END\n", i+1, i+1)
	}
	return b.String()
}

func TestParseMatchesReference(t *testing.T) {
	bus4, err := os.ReadFile("../../testdata/bus4.spef")
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]string{
		"bus4": string(bus4),
		"big":  bigSource(700), // > batchBlocks, so multiple batches
		"late_units": "*SPEF \"x\"\n*C_UNIT 1 PF\n*D_NET a 1.0\n*CAP\n1 a:1 1.0\n*END\n" +
			"*C_UNIT 1 FF\n*D_NET b 1.0\n*CAP\n1 b:1 1.0\n*END\n",
		"crlf": "*SPEF \"x\"\r\n*D_NET a 1.0\r\n*CAP\r\n1 a:1 2.0\r\n*END\r\n",
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			want, err := parseReference(strings.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Parse(strings.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			parasiticsEqual(t, got, want)

			// Arbitrary read fragmentation must not change the result.
			frag, err := Parse(iotest.OneByteReader(strings.NewReader(src)))
			if err != nil {
				t.Fatal(err)
			}
			parasiticsEqual(t, frag, want)
		})
	}
}

func TestParseErrorsMatchReference(t *testing.T) {
	cases := []string{
		"*DESIGN\n",
		"*T_UNIT 1\n",
		"*T_UNIT x NS\n",
		"*C_UNIT 1 parsec\n",
		"*D_NET a\n",
		"*D_NET a xyz\n",
		"*D_NET a -1.0\n",
		"*D_NET a 1.0\n*D_NET b 2.0\n",
		"*CONN\n",
		"*END\n",
		"*D_NET a 1.0\n*END\n*D_NET a 2.0\n*END\n",
		"*P x I\n",
		"*D_NET a 1.0\n*CONN\n*P x Q\n*END\n",
		"*D_NET a 1.0\n*CONN\n*P x\n*END\n",
		"*D_NET a 1.0\n*CAP\nnonsense\n*END\n",
		"*D_NET a 1.0\n*CAP\n1 a:1 bad\n*END\n",
		"*D_NET a 1.0\n*CAP\n1 a:1 -2\n*END\n",
		"*D_NET a 1.0\n*CAP\n1 a:1 b:1 -2\n*END\n",
		"*D_NET a 1.0\n*RES\n1 a:1 a:2\n*END\n",
		"*D_NET a 1.0\n*RES\n1 a:1 a:2 -1\n*END\n",
		"*D_NET a 1.0\n*CAP\n",
		"*NAME_MAP\nbroken entry here\n",
		"*NAME_MAP\n*D_NET a 1.0\n*1 mapped\n*END\n",
		"stray words\n",
	}
	for i, src := range cases {
		_, wantErr := parseReference(strings.NewReader(src))
		_, gotErr := Parse(strings.NewReader(src))
		if wantErr == nil {
			t.Fatalf("case %d: reference accepted %q", i, src)
		}
		if gotErr == nil {
			t.Fatalf("case %d: streaming parser accepted %q, want %v", i, src, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("case %d: error mismatch\n  got:  %v\n  want: %v", i, gotErr, wantErr)
		}
	}
}
