package spef

// This file preserves the original sequential whole-scan parser as a
// test-only reference implementation. The golden equivalence tests check
// that the streaming parallel Parse produces databases and errors
// identical to this implementation.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parseReference reads the SPEF subset line by line in one goroutine.
func parseReference(r io.Reader) (*Parasitics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	p := NewParasitics("")
	var cur *Net
	section := ""
	cScale, rScale := 1.0, 1.0
	nameMap := make(map[string]string)
	expand := func(tok string) string {
		if !strings.HasPrefix(tok, "*") {
			return tok
		}
		key := tok[1:]
		suffix := ""
		if i := strings.IndexByte(key, ':'); i >= 0 {
			key, suffix = key[:i], key[i:]
		}
		if mapped, ok := nameMap[key]; ok {
			return mapped + suffix
		}
		return tok
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("spef: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "*SPEF":
		case "*DESIGN":
			if len(f) < 2 {
				return nil, fail("*DESIGN wants a name")
			}
			p.Design = strings.Trim(f[1], `"`)
		case "*NAME_MAP":
			section = "*NAME_MAP"
		case "*T_UNIT", "*C_UNIT", "*R_UNIT":
			if len(f) != 3 {
				return nil, fail("%s wants VALUE UNIT", f[0])
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fail("bad unit value: %v", err)
			}
			scale, err := unitScale(f[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			switch f[0] {
			case "*C_UNIT":
				cScale = v * scale
			case "*R_UNIT":
				rScale = v * scale
			}
		case "*D_NET":
			if len(f) != 3 {
				return nil, fail("*D_NET wants NET TOTALCAP")
			}
			f[1] = expand(f[1])
			if cur != nil {
				return nil, fail("*D_NET %q inside unterminated net %q", f[1], cur.Name)
			}
			tc, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fail("bad total cap: %v", err)
			}
			if tc < 0 {
				return nil, fail("negative total cap %g on net %q", tc, f[1])
			}
			cur = &Net{Name: f[1], TotalCap: tc * cScale}
			section = ""
		case "*CONN", "*CAP", "*RES":
			if cur == nil {
				return nil, fail("%s outside *D_NET", f[0])
			}
			section = f[0]
		case "*END":
			if cur == nil {
				return nil, fail("*END outside *D_NET")
			}
			if err := p.AddNet(cur); err != nil {
				return nil, fail("%v", err)
			}
			cur, section = nil, ""
		case "*P", "*I":
			if cur == nil || section != "*CONN" {
				return nil, fail("%s outside *CONN", f[0])
			}
			if len(f) != 3 {
				return nil, fail("%s wants PIN DIR", f[0])
			}
			dir, err := parseConnDir(f[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			pin := expand(f[1])
			cur.Conns = append(cur.Conns, Conn{
				Pin:    pin,
				IsPort: f[0] == "*P",
				Dir:    dir,
				Node:   pin,
			})
		default:
			switch section {
			case "*NAME_MAP":
				if cur != nil {
					return nil, fail("*NAME_MAP entry inside *D_NET")
				}
				if len(f) != 2 || !strings.HasPrefix(f[0], "*") {
					return nil, fail("bad *NAME_MAP entry %q", line)
				}
				nameMap[f[0][1:]] = f[1]
			case "*CAP":
				switch len(f) {
				case 3:
					v, err := strconv.ParseFloat(f[2], 64)
					if err != nil {
						return nil, fail("bad cap: %v", err)
					}
					if v < 0 {
						return nil, fail("negative cap %g at node %q", v, f[1])
					}
					cur.Caps = append(cur.Caps, CapEntry{Node: expand(f[1]), F: v * cScale})
				case 4:
					v, err := strconv.ParseFloat(f[3], 64)
					if err != nil {
						return nil, fail("bad coupling cap: %v", err)
					}
					if v < 0 {
						return nil, fail("negative coupling cap %g at node %q", v, f[1])
					}
					cur.Caps = append(cur.Caps, CapEntry{Node: expand(f[1]), Other: expand(f[2]), F: v * cScale})
				default:
					return nil, fail("bad *CAP entry")
				}
			case "*RES":
				if len(f) != 4 {
					return nil, fail("bad *RES entry")
				}
				v, err := strconv.ParseFloat(f[3], 64)
				if err != nil {
					return nil, fail("bad resistance: %v", err)
				}
				if v < 0 {
					return nil, fail("negative resistance %g between %q and %q", v, f[1], f[2])
				}
				cur.Ress = append(cur.Ress, ResEntry{A: expand(f[1]), B: expand(f[2]), Ohms: v * rScale})
			default:
				return nil, fail("unexpected line %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spef: line %d: %w", lineNo+1, err)
	}
	if cur != nil {
		return nil, fmt.Errorf("spef: line %d: net %q not terminated with *END", lineNo, cur.Name)
	}
	return p, nil
}
