package spef

import (
	"math"
	"strings"
	"testing"
)

const sample = `*SPEF "IEEE 1481-1998 subset"
*DESIGN "bus2"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 KOHM
*D_NET a 12.0
*CONN
*I drv_a:Y O
*I rcv_a:A I
*CAP
1 a:1 4.0
2 a:2 4.0
3 a:2 b:2 4.0
*RES
1 drv_a:Y a:1 0.1
2 a:1 a:2 0.2
3 a:2 rcv_a:A 0.1
*END
*D_NET b 8.0
*CONN
*I drv_b:Y O
*I rcv_b:A I
*CAP
1 b:1 4.0
2 b:2 b:1 0.0
*RES
1 drv_b:Y b:1 0.15
*END
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if p.Design != "bus2" {
		t.Fatalf("design = %q", p.Design)
	}
	if p.NumNets() != 2 {
		t.Fatalf("nets = %d", p.NumNets())
	}
	a := p.Net("a")
	if a == nil {
		t.Fatal("missing net a")
	}
	// Units: FF and KOHM scaling applied.
	if math.Abs(a.TotalCap-12e-15) > 1e-24 {
		t.Fatalf("total cap = %g", a.TotalCap)
	}
	if got := a.GroundCap(); math.Abs(got-8e-15) > 1e-24 {
		t.Fatalf("ground cap = %g", got)
	}
	if got := a.CouplingCap(); math.Abs(got-4e-15) > 1e-24 {
		t.Fatalf("coupling cap = %g", got)
	}
	if len(a.Ress) != 3 || math.Abs(a.Ress[1].Ohms-200) > 1e-9 {
		t.Fatalf("res = %+v", a.Ress)
	}
	if len(a.Conns) != 2 || a.Conns[0].Dir != DirOut || a.Conns[0].IsPort {
		t.Fatalf("conns = %+v", a.Conns)
	}
}

func TestCouplingByNet(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Net("a").CouplingByNet()
	if len(m) != 1 || math.Abs(m["b"]-4e-15) > 1e-24 {
		t.Fatalf("coupling map = %v", m)
	}
}

func TestNetOfNode(t *testing.T) {
	if NetOfNode("bus:3") != "bus" {
		t.Fatal("prefix extraction")
	}
	if NetOfNode("plain") != "plain" {
		t.Fatal("bare name")
	}
	if NetOfNode("a:b:c") != "a" {
		t.Fatal("first colon wins")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, p); err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if p2.NumNets() != p.NumNets() || p2.Design != p.Design {
		t.Fatal("round trip changed database")
	}
	a1, a2 := p.Net("a"), p2.Net("a")
	if math.Abs(a1.TotalCap-a2.TotalCap) > 1e-27 {
		t.Fatalf("total cap drift: %g vs %g", a1.TotalCap, a2.TotalCap)
	}
	if len(a1.Caps) != len(a2.Caps) || len(a1.Ress) != len(a2.Ress) {
		t.Fatal("entry counts changed")
	}
	for i := range a1.Caps {
		if math.Abs(a1.Caps[i].F-a2.Caps[i].F) > 1e-27 || a1.Caps[i].Other != a2.Caps[i].Other {
			t.Fatalf("cap %d drift", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"*D_NET a x",                      // bad total cap
		"*D_NET a 1\n*D_NET b 1",          // nested D_NET
		"*END",                            // stray END
		"*P p I",                          // CONN entry outside section
		"*D_NET a 1\n*CAP\n1 a:1 bogus",   // bad cap value
		"*D_NET a 1\n*RES\n1 a:1 a:2",     // short RES
		"*D_NET a 1\nrandom words here x", // junk inside net
		"*T_UNIT 1 FURLONG",               // bad unit
		"*T_UNIT x PS",                    // bad unit value
		"*D_NET a 1",                      // unterminated
		"*D_NET a 1\n*CONN\n*I p Q",       // bad direction
		"junk",                            // junk outside net
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestParseRejectsNegativeValues pins the physicality checks: negative
// capacitance or resistance marks a broken extraction and must be
// rejected at parse time, with the offending line number in the error.
func TestParseRejectsNegativeValues(t *testing.T) {
	cases := []struct {
		src      string
		wantLine string
		wantMsg  string
	}{
		{"*D_NET a -1.0\n*END", "line 1", "negative total cap"},
		{"*D_NET a 1\n*CAP\n1 a:1 -4.0\n*END", "line 3", "negative cap"},
		{"*D_NET a 1\n*CAP\n1 a:1 b:1 -2.0\n*END", "line 3", "negative coupling cap"},
		{"*D_NET a 1\n*RES\n1 a:1 a:2 -0.5\n*END", "line 3", "negative resistance"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tc.src)
			continue
		}
		for _, want := range []string{tc.wantLine, tc.wantMsg} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Parse(%q) error = %q, want it to mention %q", tc.src, err, want)
			}
		}
	}
}

// TestParseErrorsCarryLineNumbers spot-checks that structural errors
// report where they happened.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	src := "*DESIGN \"d\"\n*D_NET a 1\n*CAP\n1 a:1 bogus\n*END"
	_, err := Parse(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error = %v, want mention of line 4", err)
	}
}

func TestAddNetDuplicate(t *testing.T) {
	p := NewParasitics("t")
	if err := p.AddNet(&Net{Name: "n"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNet(&Net{Name: "n"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestNetsSorted(t *testing.T) {
	p := NewParasitics("t")
	for _, n := range []string{"z", "a", "m"} {
		if err := p.AddNet(&Net{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	nets := p.Nets()
	if nets[0].Name != "a" || nets[1].Name != "m" || nets[2].Name != "z" {
		t.Fatalf("order: %v", []string{nets[0].Name, nets[1].Name, nets[2].Name})
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "// header comment\n\n*SPEF \"x\"\n*DESIGN \"d\"\n*D_NET n 1.0\n*END\n"
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Net("n") == nil {
		t.Fatal("net missing")
	}
}

func TestNameMapExpansion(t *testing.T) {
	src := `*SPEF "x"
*DESIGN "mapped"
*NAME_MAP
*1 very/long/victim
*2 agg_net
*3 drv_cell
*D_NET *1 5.0e-15
*CONN
*I *3:Y O
*CAP
1 *1:1 3.0e-15
2 *1:1 *2:1 2.0e-15
*RES
1 *3:Y *1:1 100
*END
`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	n := p.Net("very/long/victim")
	if n == nil {
		t.Fatalf("mapped net missing; have %v", p.Nets())
	}
	if n.Conns[0].Pin != "drv_cell:Y" {
		t.Fatalf("conn pin = %q", n.Conns[0].Pin)
	}
	if n.Caps[0].Node != "very/long/victim:1" {
		t.Fatalf("cap node = %q", n.Caps[0].Node)
	}
	if n.Caps[1].Other != "agg_net:1" {
		t.Fatalf("coupling other = %q", n.Caps[1].Other)
	}
	if got := n.CouplingByNet()["agg_net"]; got != 2e-15 {
		t.Fatalf("coupling by net = %v", n.CouplingByNet())
	}
}

func TestNameMapErrors(t *testing.T) {
	cases := []string{
		"*NAME_MAP\nbogus entry here",       // missing *index
		"*D_NET a 1\n*NAME_MAP\n*1 x\n*END", // map inside net? NAME_MAP resets section
	}
	// The first is a hard error; the second is legal-ish per our grammar
	// (section switch), so only assert the first.
	if _, err := Parse(strings.NewReader(cases[0])); err == nil {
		t.Error("malformed NAME_MAP entry accepted")
	}
}

func TestUnmappedReferencePassesThrough(t *testing.T) {
	// A *N token with no map entry is kept verbatim rather than dropped.
	src := "*D_NET *9 1.0\n*END\n"
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Net("*9") == nil {
		t.Fatal("unmapped reference lost")
	}
}
