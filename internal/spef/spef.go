// Package spef reads and writes a practical subset of the Standard
// Parasitic Exchange Format (IEEE 1481): per-net distributed RC sections
// with cross-coupling capacitors between nets. This is the parasitic data
// model crosstalk analysis runs on.
//
// Supported constructs:
//
//	*SPEF, *DESIGN, *T_UNIT, *C_UNIT, *R_UNIT  (header; units are scaled)
//	*NAME_MAP with *<index> references expanded wherever nodes appear
//	*D_NET <net> <totalCap>
//	*CONN  with *P (port) and *I (instance pin) entries
//	*CAP   with grounded (node cap) and coupling (node other cap) entries
//	*RES
//	*END
//
// Node names are <net>:<index> as produced by extractors; the special node
// equal to the bare net name refers to the net's root (driver) node.
package spef

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ConnDir is the direction recorded for a *CONN entry.
type ConnDir int

const (
	// DirIn marks a load (input pin of a cell, or design output port).
	DirIn ConnDir = iota
	// DirOut marks a driver (output pin of a cell, or design input port).
	DirOut
)

// String renders the SPEF direction token.
func (d ConnDir) String() string {
	if d == DirOut {
		return "O"
	}
	return "I"
}

// Conn is one *CONN entry: where the net attaches to the logical design.
type Conn struct {
	// Pin is "inst:pin" for instance connections or the port name.
	Pin    string
	IsPort bool
	Dir    ConnDir
	// Node is the RC node the connection lands on; defaults to the pin
	// name itself.
	Node string
}

// CapEntry is a *CAP line. Other == "" means a grounded capacitor; a
// non-empty Other names a node on another net and makes this a coupling
// capacitor.
type CapEntry struct {
	Node  string
	Other string
	F     float64
}

// ResEntry is a *RES line.
type ResEntry struct {
	A, B string
	Ohms float64
}

// Net is the parasitic description of one net.
type Net struct {
	Name     string
	TotalCap float64
	Conns    []Conn
	Caps     []CapEntry
	Ress     []ResEntry
}

// GroundCap sums the grounded capacitance entries.
func (n *Net) GroundCap() float64 {
	var sum float64
	for _, c := range n.Caps {
		if c.Other == "" {
			sum += c.F
		}
	}
	return sum
}

// CouplingCap sums the coupling capacitance entries.
func (n *Net) CouplingCap() float64 {
	var sum float64
	for _, c := range n.Caps {
		if c.Other != "" {
			sum += c.F
		}
	}
	return sum
}

// CouplingByNet returns total coupling capacitance grouped by the other
// net's name (the prefix of the other node before ':').
func (n *Net) CouplingByNet() map[string]float64 {
	out := make(map[string]float64)
	for _, c := range n.Caps {
		if c.Other == "" {
			continue
		}
		out[NetOfNode(c.Other)] += c.F
	}
	return out
}

// NetOfNode extracts the net name from a <net>:<index> node name; a bare
// name maps to itself.
func NetOfNode(node string) string {
	if i := strings.IndexByte(node, ':'); i >= 0 {
		return node[:i]
	}
	return node
}

// Parasitics is a parsed SPEF file.
type Parasitics struct {
	Design string
	nets   map[string]*Net
}

// NewParasitics returns an empty database.
func NewParasitics(design string) *Parasitics {
	return &Parasitics{Design: design, nets: make(map[string]*Net)}
}

// AddNet inserts a net, rejecting duplicates.
func (p *Parasitics) AddNet(n *Net) error {
	if _, dup := p.nets[n.Name]; dup {
		return fmt.Errorf("spef: duplicate net %q", n.Name)
	}
	p.nets[n.Name] = n
	return nil
}

// Net returns the named net's parasitics or nil.
func (p *Parasitics) Net(name string) *Net { return p.nets[name] }

// Nets returns all nets sorted by name.
func (p *Parasitics) Nets() []*Net {
	names := make([]string, 0, len(p.nets))
	for n := range p.nets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Net, len(names))
	for i, n := range names {
		out[i] = p.nets[n]
	}
	return out
}

// NumNets returns the number of nets with parasitics.
func (p *Parasitics) NumNets() int { return len(p.nets) }

// Parse reads the SPEF subset.
func Parse(r io.Reader) (*Parasitics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	p := NewParasitics("")
	var cur *Net
	section := ""
	cScale, rScale := 1.0, 1.0
	nameMap := make(map[string]string)
	// expand resolves *<index> name-map references anywhere in a node
	// path, including the prefix of an "*1:3"-style pin node.
	expand := func(tok string) string {
		if !strings.HasPrefix(tok, "*") {
			return tok
		}
		key := tok[1:]
		suffix := ""
		if i := strings.IndexByte(key, ':'); i >= 0 {
			key, suffix = key[:i], key[i:]
		}
		if mapped, ok := nameMap[key]; ok {
			return mapped + suffix
		}
		return tok
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("spef: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "*SPEF":
			// Version string; ignored.
		case "*DESIGN":
			if len(f) < 2 {
				return nil, fail("*DESIGN wants a name")
			}
			p.Design = strings.Trim(f[1], `"`)
		case "*NAME_MAP":
			section = "*NAME_MAP"
		case "*T_UNIT", "*C_UNIT", "*R_UNIT":
			if len(f) != 3 {
				return nil, fail("%s wants VALUE UNIT", f[0])
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fail("bad unit value: %v", err)
			}
			scale, err := unitScale(f[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			switch f[0] {
			case "*C_UNIT":
				cScale = v * scale
			case "*R_UNIT":
				rScale = v * scale
			}
		case "*D_NET":
			if len(f) != 3 {
				return nil, fail("*D_NET wants NET TOTALCAP")
			}
			f[1] = expand(f[1])
			if cur != nil {
				return nil, fail("*D_NET %q inside unterminated net %q", f[1], cur.Name)
			}
			tc, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fail("bad total cap: %v", err)
			}
			if tc < 0 {
				return nil, fail("negative total cap %g on net %q", tc, f[1])
			}
			cur = &Net{Name: f[1], TotalCap: tc * cScale}
			section = ""
		case "*CONN", "*CAP", "*RES":
			if cur == nil {
				return nil, fail("%s outside *D_NET", f[0])
			}
			section = f[0]
		case "*END":
			if cur == nil {
				return nil, fail("*END outside *D_NET")
			}
			if err := p.AddNet(cur); err != nil {
				return nil, fail("%v", err)
			}
			cur, section = nil, ""
		case "*P", "*I":
			if cur == nil || section != "*CONN" {
				return nil, fail("%s outside *CONN", f[0])
			}
			if len(f) != 3 {
				return nil, fail("%s wants PIN DIR", f[0])
			}
			dir, err := parseConnDir(f[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			pin := expand(f[1])
			cur.Conns = append(cur.Conns, Conn{
				Pin:    pin,
				IsPort: f[0] == "*P",
				Dir:    dir,
				Node:   pin,
			})
		default:
			switch section {
			case "*NAME_MAP":
				// Entries look like "*12 actual/name".
				if cur != nil {
					return nil, fail("*NAME_MAP entry inside *D_NET")
				}
				if len(f) != 2 || !strings.HasPrefix(f[0], "*") {
					return nil, fail("bad *NAME_MAP entry %q", line)
				}
				nameMap[f[0][1:]] = f[1]
			case "*CAP":
				switch len(f) {
				case 3: // idx node cap
					v, err := strconv.ParseFloat(f[2], 64)
					if err != nil {
						return nil, fail("bad cap: %v", err)
					}
					if v < 0 {
						return nil, fail("negative cap %g at node %q", v, f[1])
					}
					cur.Caps = append(cur.Caps, CapEntry{Node: expand(f[1]), F: v * cScale})
				case 4: // idx node other cap
					v, err := strconv.ParseFloat(f[3], 64)
					if err != nil {
						return nil, fail("bad coupling cap: %v", err)
					}
					if v < 0 {
						return nil, fail("negative coupling cap %g at node %q", v, f[1])
					}
					cur.Caps = append(cur.Caps, CapEntry{Node: expand(f[1]), Other: expand(f[2]), F: v * cScale})
				default:
					return nil, fail("bad *CAP entry")
				}
			case "*RES":
				if len(f) != 4 {
					return nil, fail("bad *RES entry")
				}
				v, err := strconv.ParseFloat(f[3], 64)
				if err != nil {
					return nil, fail("bad resistance: %v", err)
				}
				if v < 0 {
					return nil, fail("negative resistance %g between %q and %q", v, f[1], f[2])
				}
				cur.Ress = append(cur.Ress, ResEntry{A: expand(f[1]), B: expand(f[2]), Ohms: v * rScale})
			default:
				return nil, fail("unexpected line %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spef: line %d: %w", lineNo+1, err)
	}
	if cur != nil {
		return nil, fmt.Errorf("spef: line %d: net %q not terminated with *END", lineNo, cur.Name)
	}
	return p, nil
}

func parseConnDir(s string) (ConnDir, error) {
	switch s {
	case "I":
		return DirIn, nil
	case "O":
		return DirOut, nil
	}
	return DirIn, fmt.Errorf("bad direction %q (want I|O)", s)
}

func unitScale(u string) (float64, error) {
	switch strings.ToUpper(u) {
	case "S", "OHM", "F":
		return 1, nil
	case "MS":
		return 1e-3, nil
	case "US":
		return 1e-6, nil
	case "NS":
		return 1e-9, nil
	case "PS":
		return 1e-12, nil
	case "KOHM":
		return 1e3, nil
	case "PF":
		return 1e-12, nil
	case "FF":
		return 1e-15, nil
	}
	return 0, fmt.Errorf("unknown unit %q", u)
}

// Write renders the database in the SPEF subset with base SI units.
func Write(w io.Writer, p *Parasitics) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `*SPEF "IEEE 1481-1998 subset"`)
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", p.Design)
	fmt.Fprintln(bw, "*T_UNIT 1 S")
	fmt.Fprintln(bw, "*C_UNIT 1 F")
	fmt.Fprintln(bw, "*R_UNIT 1 OHM")
	for _, n := range p.Nets() {
		fmt.Fprintf(bw, "*D_NET %s %g\n", n.Name, n.TotalCap)
		if len(n.Conns) > 0 {
			fmt.Fprintln(bw, "*CONN")
			for _, c := range n.Conns {
				tag := "*I"
				if c.IsPort {
					tag = "*P"
				}
				fmt.Fprintf(bw, "%s %s %s\n", tag, c.Pin, c.Dir)
			}
		}
		if len(n.Caps) > 0 {
			fmt.Fprintln(bw, "*CAP")
			for i, c := range n.Caps {
				if c.Other == "" {
					fmt.Fprintf(bw, "%d %s %g\n", i+1, c.Node, c.F)
				} else {
					fmt.Fprintf(bw, "%d %s %s %g\n", i+1, c.Node, c.Other, c.F)
				}
			}
		}
		if len(n.Ress) > 0 {
			fmt.Fprintln(bw, "*RES")
			for i, r := range n.Ress {
				fmt.Fprintf(bw, "%d %s %s %g\n", i+1, r.A, r.B, r.Ohms)
			}
		}
		fmt.Fprintln(bw, "*END")
	}
	return bw.Flush()
}
