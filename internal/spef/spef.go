// Package spef reads and writes a practical subset of the Standard
// Parasitic Exchange Format (IEEE 1481): per-net distributed RC sections
// with cross-coupling capacitors between nets. This is the parasitic data
// model crosstalk analysis runs on.
//
// Supported constructs:
//
//	*SPEF, *DESIGN, *T_UNIT, *C_UNIT, *R_UNIT  (header; units are scaled)
//	*NAME_MAP with *<index> references expanded wherever nodes appear
//	*D_NET <net> <totalCap>
//	*CONN  with *P (port) and *I (instance pin) entries
//	*CAP   with grounded (node cap) and coupling (node other cap) entries
//	*RES
//	*END
//
// Node names are <net>:<index> as produced by extractors; the special node
// equal to the bare net name refers to the net's root (driver) node.
package spef

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/textio"
)

// ConnDir is the direction recorded for a *CONN entry.
type ConnDir int

const (
	// DirIn marks a load (input pin of a cell, or design output port).
	DirIn ConnDir = iota
	// DirOut marks a driver (output pin of a cell, or design input port).
	DirOut
)

// String renders the SPEF direction token.
func (d ConnDir) String() string {
	if d == DirOut {
		return "O"
	}
	return "I"
}

// Conn is one *CONN entry: where the net attaches to the logical design.
type Conn struct {
	// Pin is "inst:pin" for instance connections or the port name.
	Pin    string
	IsPort bool
	Dir    ConnDir
	// Node is the RC node the connection lands on; defaults to the pin
	// name itself.
	Node string
}

// CapEntry is a *CAP line. Other == "" means a grounded capacitor; a
// non-empty Other names a node on another net and makes this a coupling
// capacitor.
type CapEntry struct {
	Node  string
	Other string
	F     float64
}

// ResEntry is a *RES line.
type ResEntry struct {
	A, B string
	Ohms float64
}

// Net is the parasitic description of one net.
type Net struct {
	Name     string
	TotalCap float64
	Conns    []Conn
	Caps     []CapEntry
	Ress     []ResEntry
}

// GroundCap sums the grounded capacitance entries.
func (n *Net) GroundCap() float64 {
	var sum float64
	for _, c := range n.Caps {
		if c.Other == "" {
			sum += c.F
		}
	}
	return sum
}

// CouplingCap sums the coupling capacitance entries.
func (n *Net) CouplingCap() float64 {
	var sum float64
	for _, c := range n.Caps {
		if c.Other != "" {
			sum += c.F
		}
	}
	return sum
}

// CouplingByNet returns total coupling capacitance grouped by the other
// net's name (the prefix of the other node before ':').
func (n *Net) CouplingByNet() map[string]float64 {
	out := make(map[string]float64)
	for _, c := range n.Caps {
		if c.Other == "" {
			continue
		}
		out[NetOfNode(c.Other)] += c.F
	}
	return out
}

// NetOfNode extracts the net name from a <net>:<index> node name; a bare
// name maps to itself.
func NetOfNode(node string) string {
	if i := strings.IndexByte(node, ':'); i >= 0 {
		return node[:i]
	}
	return node
}

// Parasitics is a parsed SPEF file.
type Parasitics struct {
	Design string
	nets   map[string]*Net
}

// NewParasitics returns an empty database.
func NewParasitics(design string) *Parasitics {
	return &Parasitics{Design: design, nets: make(map[string]*Net)}
}

// AddNet inserts a net, rejecting duplicates.
func (p *Parasitics) AddNet(n *Net) error {
	if _, dup := p.nets[n.Name]; dup {
		return fmt.Errorf("spef: duplicate net %q", n.Name)
	}
	p.nets[n.Name] = n
	return nil
}

// Net returns the named net's parasitics or nil.
func (p *Parasitics) Net(name string) *Net { return p.nets[name] }

// Nets returns all nets sorted by name.
func (p *Parasitics) Nets() []*Net {
	names := make([]string, 0, len(p.nets))
	for n := range p.nets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Net, len(names))
	for i, n := range names {
		out[i] = p.nets[n]
	}
	return out
}

// NumNets returns the number of nets with parasitics.
func (p *Parasitics) NumNets() int { return len(p.nets) }

// Parse reads the SPEF subset.
//
// The reader is streaming and parallel: lines are scanned from chunked
// reads (never materializing the file), *D_NET…*END sections are batched
// and parsed by a worker pool against a snapshot of the header state,
// and the parsed nets are committed serially in file order — so the
// resulting database and any error (position and text) are identical to
// a sequential parse. Sections containing global directives (*DESIGN,
// unit lines) and top-level lines between sections fall back to the
// serial machine, preserving exact semantics on pathological inputs.
func Parse(r io.Reader) (*Parasitics, error) {
	p := NewParasitics("")
	m := newMachine(p)
	m.onNet = func(n *Net, endLine int) error {
		if err := p.AddNet(n); err != nil {
			return fmt.Errorf("spef: line %d: %v", endLine, err)
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	const batchBlocks = 256

	lr := textio.NewLineReader(r)
	var (
		batch      []blockRec
		block      blockRec
		collecting bool
		lineNo     = 0
	)
	// flush parses the pending batch in parallel and commits the nets in
	// file order.
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		results := make([]blockResult, len(batch))
		nw := workers
		if nw > len(batch) {
			nw = len(batch)
		}
		if nw <= 1 {
			for i := range batch {
				results[i] = parseBlock(batch[i], m.cScale, m.rScale, m.nameMap)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(batch); i += nw {
						results[i] = parseBlock(batch[i], m.cScale, m.rScale, m.nameMap)
					}
				}(w)
			}
			wg.Wait()
		}
		batch = batch[:0]
		for _, res := range results {
			for _, nl := range res.nets {
				if err := m.onNet(nl.net, nl.endLine); err != nil {
					return err
				}
			}
			if res.err != nil {
				return res.err
			}
		}
		return nil
	}

	for {
		line, ok, err := lr.Next()
		if err != nil {
			return nil, fmt.Errorf("spef: line %d: %w", lineNo+1, err)
		}
		if !ok {
			break
		}
		lineNo++
		trim := bytes.TrimSpace(line)
		if len(trim) == 0 || bytes.HasPrefix(trim, []byte("//")) {
			continue
		}
		if collecting {
			block.lines = append(block.lines, trim)
			block.nos = append(block.nos, lineNo)
			kw := textio.FirstField(trim)
			switch string(kw) {
			case "*T_UNIT", "*C_UNIT", "*R_UNIT", "*DESIGN":
				// Global directive inside a section: this block must run
				// on the live serial state.
				block.global = true
			case "*END":
				collecting = false
				if block.global {
					if err := flush(); err != nil {
						return nil, err
					}
					if err := m.runBlock(block); err != nil {
						return nil, err
					}
				} else {
					batch = append(batch, block)
					if len(batch) >= batchBlocks {
						if err := flush(); err != nil {
							return nil, err
						}
					}
				}
				block = blockRec{}
			}
			continue
		}
		if string(textio.FirstField(trim)) == "*D_NET" {
			collecting = true
			block = blockRec{lines: [][]byte{trim}, nos: []int{lineNo}}
			continue
		}
		// Any other top-level line runs serially against live state; the
		// batch is committed first so errors keep file order.
		if err := flush(); err != nil {
			return nil, err
		}
		if err := m.step(trim, lineNo); err != nil {
			return nil, err
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if collecting {
		// Input ended inside a section: replay it serially so the
		// unterminated-net error comes out exactly as before.
		if err := m.runBlock(block); err != nil {
			return nil, err
		}
	}
	if m.cur != nil {
		return nil, fmt.Errorf("spef: line %d: net %q not terminated with *END", lineNo, m.cur.Name)
	}
	return p, nil
}

// blockRec is one collected *D_NET…*END section: trimmed line views and
// their absolute line numbers. The views alias reader chunks that stay
// referenced until the block is parsed.
type blockRec struct {
	lines  [][]byte
	nos    []int
	global bool // contains a global directive; must run serially
}

type netAndLine struct {
	net     *Net
	endLine int
}

type blockResult struct {
	nets []netAndLine
	err  error
}

// parseBlock runs one section through a private machine seeded with a
// snapshot of the header state. The name map is shared read-only: map
// mutations inside a section always error before writing.
func parseBlock(b blockRec, cScale, rScale float64, nameMap map[string]string) blockResult {
	wm := newMachine(new(Parasitics))
	wm.cScale, wm.rScale = cScale, rScale
	wm.nameMap = nameMap
	var res blockResult
	wm.onNet = func(n *Net, endLine int) error {
		res.nets = append(res.nets, netAndLine{net: n, endLine: endLine})
		return nil
	}
	res.err = wm.runBlock(b)
	return res
}

// machine is the sequential SPEF line interpreter. One instance tracks
// the live global state; per-block worker instances run with snapshots.
type machine struct {
	p       *Parasitics
	cur     *Net
	section string
	cScale  float64
	rScale  float64
	nameMap map[string]string
	onNet   func(n *Net, endLine int) error
	fields  [][]byte // reusable scratch
}

func newMachine(p *Parasitics) *machine {
	return &machine{p: p, cScale: 1, rScale: 1, nameMap: make(map[string]string)}
}

func (m *machine) runBlock(b blockRec) error {
	for i, line := range b.lines {
		if err := m.step(line, b.nos[i]); err != nil {
			return err
		}
	}
	return nil
}

// expand resolves *<index> name-map references anywhere in a node path,
// including the prefix of an "*1:3"-style pin node.
func (m *machine) expand(tok []byte) string {
	if len(tok) == 0 || tok[0] != '*' {
		return string(tok)
	}
	key := tok[1:]
	suffix := []byte(nil)
	if i := bytes.IndexByte(key, ':'); i >= 0 {
		key, suffix = key[:i], key[i:]
	}
	if mapped, ok := m.nameMap[string(key)]; ok {
		return mapped + string(suffix)
	}
	return string(tok)
}

// step interprets one trimmed, non-blank, non-comment line.
func (m *machine) step(line []byte, lineNo int) error {
	f := textio.SplitFields(line, m.fields[:0])
	m.fields = f
	fail := func(format string, args ...any) error {
		return fmt.Errorf("spef: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	switch string(f[0]) {
	case "*SPEF":
		// Version string; ignored.
	case "*DESIGN":
		if len(f) < 2 {
			return fail("*DESIGN wants a name")
		}
		m.p.Design = strings.Trim(string(f[1]), `"`)
	case "*NAME_MAP":
		m.section = "*NAME_MAP"
	case "*T_UNIT", "*C_UNIT", "*R_UNIT":
		if len(f) != 3 {
			return fail("%s wants VALUE UNIT", f[0])
		}
		v, err := strconv.ParseFloat(string(f[1]), 64)
		if err != nil {
			return fail("bad unit value: %v", err)
		}
		scale, err := unitScale(string(f[2]))
		if err != nil {
			return fail("%v", err)
		}
		switch string(f[0]) {
		case "*C_UNIT":
			m.cScale = v * scale
		case "*R_UNIT":
			m.rScale = v * scale
		}
	case "*D_NET":
		if len(f) != 3 {
			return fail("*D_NET wants NET TOTALCAP")
		}
		name := m.expand(f[1])
		if m.cur != nil {
			return fail("*D_NET %q inside unterminated net %q", name, m.cur.Name)
		}
		tc, err := strconv.ParseFloat(string(f[2]), 64)
		if err != nil {
			return fail("bad total cap: %v", err)
		}
		if tc < 0 {
			return fail("negative total cap %g on net %q", tc, name)
		}
		m.cur = &Net{Name: name, TotalCap: tc * m.cScale}
		m.section = ""
	case "*CONN", "*CAP", "*RES":
		if m.cur == nil {
			return fail("%s outside *D_NET", f[0])
		}
		m.section = string(f[0])
	case "*END":
		if m.cur == nil {
			return fail("*END outside *D_NET")
		}
		n := m.cur
		m.cur, m.section = nil, ""
		if err := m.onNet(n, lineNo); err != nil {
			return err
		}
	case "*P", "*I":
		if m.cur == nil || m.section != "*CONN" {
			return fail("%s outside *CONN", f[0])
		}
		if len(f) != 3 {
			return fail("%s wants PIN DIR", f[0])
		}
		dir, err := parseConnDir(string(f[2]))
		if err != nil {
			return fail("%v", err)
		}
		pin := m.expand(f[1])
		m.cur.Conns = append(m.cur.Conns, Conn{
			Pin:    pin,
			IsPort: f[0][1] == 'P',
			Dir:    dir,
			Node:   pin,
		})
	default:
		switch m.section {
		case "*NAME_MAP":
			// Entries look like "*12 actual/name".
			if m.cur != nil {
				return fail("*NAME_MAP entry inside *D_NET")
			}
			if len(f) != 2 || f[0][0] != '*' {
				return fail("bad *NAME_MAP entry %q", line)
			}
			m.nameMap[string(f[0][1:])] = string(f[1])
		case "*CAP":
			switch len(f) {
			case 3: // idx node cap
				v, err := strconv.ParseFloat(string(f[2]), 64)
				if err != nil {
					return fail("bad cap: %v", err)
				}
				if v < 0 {
					return fail("negative cap %g at node %q", v, f[1])
				}
				m.cur.Caps = append(m.cur.Caps, CapEntry{Node: m.expand(f[1]), F: v * m.cScale})
			case 4: // idx node other cap
				v, err := strconv.ParseFloat(string(f[3]), 64)
				if err != nil {
					return fail("bad coupling cap: %v", err)
				}
				if v < 0 {
					return fail("negative coupling cap %g at node %q", v, f[1])
				}
				m.cur.Caps = append(m.cur.Caps, CapEntry{Node: m.expand(f[1]), Other: m.expand(f[2]), F: v * m.cScale})
			default:
				return fail("bad *CAP entry")
			}
		case "*RES":
			if len(f) != 4 {
				return fail("bad *RES entry")
			}
			v, err := strconv.ParseFloat(string(f[3]), 64)
			if err != nil {
				return fail("bad resistance: %v", err)
			}
			if v < 0 {
				return fail("negative resistance %g between %q and %q", v, f[1], f[2])
			}
			m.cur.Ress = append(m.cur.Ress, ResEntry{A: m.expand(f[1]), B: m.expand(f[2]), Ohms: v * m.rScale})
		default:
			return fail("unexpected line %q", line)
		}
	}
	return nil
}

func parseConnDir(s string) (ConnDir, error) {
	switch s {
	case "I":
		return DirIn, nil
	case "O":
		return DirOut, nil
	}
	return DirIn, fmt.Errorf("bad direction %q (want I|O)", s)
}

func unitScale(u string) (float64, error) {
	switch strings.ToUpper(u) {
	case "S", "OHM", "F":
		return 1, nil
	case "MS":
		return 1e-3, nil
	case "US":
		return 1e-6, nil
	case "NS":
		return 1e-9, nil
	case "PS":
		return 1e-12, nil
	case "KOHM":
		return 1e3, nil
	case "PF":
		return 1e-12, nil
	case "FF":
		return 1e-15, nil
	}
	return 0, fmt.Errorf("unknown unit %q", u)
}

// Write renders the database in the SPEF subset with base SI units.
func Write(w io.Writer, p *Parasitics) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `*SPEF "IEEE 1481-1998 subset"`)
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", p.Design)
	fmt.Fprintln(bw, "*T_UNIT 1 S")
	fmt.Fprintln(bw, "*C_UNIT 1 F")
	fmt.Fprintln(bw, "*R_UNIT 1 OHM")
	for _, n := range p.Nets() {
		fmt.Fprintf(bw, "*D_NET %s %g\n", n.Name, n.TotalCap)
		if len(n.Conns) > 0 {
			fmt.Fprintln(bw, "*CONN")
			for _, c := range n.Conns {
				tag := "*I"
				if c.IsPort {
					tag = "*P"
				}
				fmt.Fprintf(bw, "%s %s %s\n", tag, c.Pin, c.Dir)
			}
		}
		if len(n.Caps) > 0 {
			fmt.Fprintln(bw, "*CAP")
			for i, c := range n.Caps {
				if c.Other == "" {
					fmt.Fprintf(bw, "%d %s %g\n", i+1, c.Node, c.F)
				} else {
					fmt.Fprintf(bw, "%d %s %s %g\n", i+1, c.Node, c.Other, c.F)
				}
			}
		}
		if len(n.Ress) > 0 {
			fmt.Fprintln(bw, "*RES")
			for i, r := range n.Ress {
				fmt.Fprintf(bw, "%d %s %s %g\n", i+1, r.A, r.B, r.Ohms)
			}
		}
		fmt.Fprintln(bw, "*END")
	}
	return bw.Flush()
}
