package server

// The content-addressed shared design cache. A thousand sessions (or
// shard run tokens) over the same sources cost one parsed-and-bound
// design: entries are keyed by a SHA-256 over the source texts,
// refcounted by every holder, and priced in bytes (bind.Design.MemBytes)
// against an optional server-wide budget.
//
// Invariants:
//
//   - An entry's design is immutable (bind.Design is safe for concurrent
//     readers), so handing one pointer to many sessions is free sharing,
//     not aliasing risk.
//
//   - refs counts live holders: one per session in the registry, one per
//     shard run token hosting engines. Only refs==0 entries may be
//     evicted; a holder's design can never be unbound underneath it.
//     Releasing the last reference keeps the entry resident ("warm") —
//     the next acquire of the same sources is a hit — until budget
//     pressure evicts it, largest-first.
//
//   - Builds are single-flight: concurrent acquires of one key while it
//     is being built coalesce onto the in-flight build instead of
//     multiplying peak memory N-fold (the revive-stampede failure mode).
//     Waiters' references are granted by the builder under the cache
//     lock, so a coalesced waiter can never observe its entry evicted
//     before it wakes.
//
//   - The byte budget is a governor, not a hard fence: in-flight builds
//     are not charged until they finish (their size is unknown), so
//     concurrent first-builds can transiently overshoot by the designs
//     in flight. After each build the exact size is charged; if eviction
//     of idle entries cannot make room the build is discarded and the
//     acquire sheds with kind "budget" (503 + Retry-After upstream).
//
// Lock ordering: the cache mutex is a leaf — it is taken with the
// server registry mutex held (release on session eviction) and must
// never acquire server locks itself.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bind"
)

// designSources are the five content inputs that determine a bound
// design and its lint verdict; together they form the cache key. Session
// options (mode, threshold, workers, fault injection) deliberately stay
// out: they configure the engine, not the immutable design.
type designSources struct {
	Netlist string
	Verilog string
	SPEF    string
	Liberty string
	Timing  string
}

func sourcesOf(req *CreateSessionRequest) designSources {
	return designSources{
		Netlist: req.Netlist,
		Verilog: req.Verilog,
		SPEF:    req.SPEF,
		Liberty: req.Liberty,
		Timing:  req.Timing,
	}
}

// srcBytes is the cheap lower bound on the parsed footprint used for
// the pre-build budget check.
func (src designSources) srcBytes() int64 {
	return int64(len(src.Netlist) + len(src.Verilog) + len(src.SPEF) + len(src.Liberty) + len(src.Timing))
}

type cacheKey [sha256.Size]byte

// key hashes the sources with length-prefix framing so concatenation
// ambiguity cannot collide two different inputs.
func (src designSources) key() cacheKey {
	h := sha256.New()
	for _, s := range []string{src.Netlist, src.Verilog, src.SPEF, src.Liberty, src.Timing} {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// designEntry is one cached bound design. b and bytes are immutable
// after insertion; refs, hits, and lastUsed are guarded by the cache
// mutex.
type designEntry struct {
	key      cacheKey
	b        *bind.Design
	bytes    int64
	refs     int
	hits     int64
	lastUsed time.Time
}

// buildCall coalesces concurrent builds of one key. waiters is guarded
// by the cache mutex; entry/einfo are written before done closes and
// read only after.
type buildCall struct {
	done    chan struct{}
	waiters int
	entry   *designEntry
	einfo   *ErrorInfo
}

// cacheStats is a point-in-time snapshot for /readyz and /metrics.
type cacheStats struct {
	Budget      int64
	Charged     int64
	Entries     int
	Referenced  int
	Hits        int64
	Misses      int64
	Evictions   int64
	BudgetSheds int64
}

type designCache struct {
	// budget is the byte ceiling; 0 disables budgeting. Immutable.
	budget int64
	now    func() time.Time
	logf   func(format string, args ...any)
	// buildHook, when non-nil, runs once per actual (non-coalesced)
	// design build. It is a test seam: the single-flight regression test
	// counts binds and slows them down through it.
	buildHook func()

	mu          sync.Mutex
	entries     map[cacheKey]*designEntry
	building    map[cacheKey]*buildCall
	charged     int64
	hits        int64
	misses      int64
	evictions   int64
	budgetSheds int64
}

func newDesignCache(budget int64, now func() time.Time, logf func(string, ...any)) *designCache {
	return &designCache{
		budget:   budget,
		now:      now,
		logf:     logf,
		entries:  make(map[cacheKey]*designEntry),
		building: make(map[cacheKey]*buildCall),
	}
}

// budgetErr is the shed result when idle eviction cannot make room.
func (c *designCache) budgetErr(need int64) *ErrorInfo {
	return &ErrorInfo{
		Kind: "budget",
		Message: fmt.Sprintf("design needs ~%d bytes but the server memory budget of %d bytes has %d charged to referenced designs; retry when sessions are deleted or idle",
			need, c.budget, c.charged),
	}
}

// acquire returns a referenced cache entry for the sources, building the
// design with build() on a miss. Exactly one build runs per key at a
// time; concurrent acquires wait for it and share the result (including
// a failure — a deterministic parse/lint error is the same for every
// waiter, and failed builds are not cached). Coalesced waiters respect
// ctx: a caller whose request expires while a slow build is in flight
// withdraws (shedding with kind "canceled") instead of tying up its
// handler goroutine and admission slot until the build completes. The
// build itself is never canceled — other waiters still want it. The
// caller owns one reference and must release() it.
func (c *designCache) acquire(ctx context.Context, src designSources, build func() (*bind.Design, *ErrorInfo)) (*designEntry, *ErrorInfo) {
	key := src.key()
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		e.refs++
		e.hits++
		e.lastUsed = c.now()
		c.hits++
		c.mu.Unlock()
		return e, nil
	}
	if bc := c.building[key]; bc != nil {
		bc.waiters++
		c.hits++
		c.mu.Unlock()
		select {
		case <-bc.done:
			// The builder granted this waiter's reference under the lock,
			// so the entry cannot have been evicted in between.
			return bc.entry, bc.einfo
		case <-ctx.Done():
			canceled := &ErrorInfo{
				Kind:    "canceled",
				Message: fmt.Sprintf("request expired while waiting for an in-flight design build: %v", ctx.Err()),
			}
			c.mu.Lock()
			if c.building[key] == bc {
				// The build is still in flight: withdraw before the
				// builder counts this waiter's reference.
				bc.waiters--
				c.hits--
				c.mu.Unlock()
				return nil, canceled
			}
			c.mu.Unlock()
			// The builder already read waiters and granted this waiter's
			// reference; done is about to close (it closes right after
			// the builder drops the lock). Take the grant and return it.
			<-bc.done
			c.release(bc.entry)
			return nil, canceled
		}
	}
	// Miss. Pre-check the budget with the cheap lower bound (source
	// bytes) so a hopeless build sheds before burning CPU and peak RSS.
	if c.budget > 0 && c.charged+src.srcBytes() > c.budget {
		c.evictLocked(src.srcBytes())
		if c.charged+src.srcBytes() > c.budget {
			c.budgetSheds++
			einfo := c.budgetErr(src.srcBytes())
			c.mu.Unlock()
			return nil, einfo
		}
	}
	bc := &buildCall{done: make(chan struct{})}
	c.building[key] = bc
	c.misses++
	hook := c.buildHook
	c.mu.Unlock()

	if hook != nil {
		hook()
	}
	b, einfo := build() // parse + lint + bind, outside every lock

	c.mu.Lock()
	var entry *designEntry
	if einfo == nil {
		need := b.MemBytes()
		if c.budget > 0 && c.charged+need > c.budget {
			c.evictLocked(need)
		}
		if c.budget > 0 && c.charged+need > c.budget {
			c.budgetSheds++
			einfo = c.budgetErr(need)
			c.logf("design cache: built design of %d bytes discarded (budget %d, charged %d)", need, c.budget, c.charged)
		} else {
			entry = &designEntry{
				key:      key,
				b:        b,
				bytes:    need,
				refs:     1 + bc.waiters, // this caller + every coalesced waiter
				hits:     int64(bc.waiters),
				lastUsed: c.now(),
			}
			c.entries[key] = entry
			c.charged += need
		}
	}
	bc.entry, bc.einfo = entry, einfo
	delete(c.building, key)
	c.mu.Unlock()
	close(bc.done)
	return entry, einfo
}

// release drops one reference. The entry stays resident as a warm hit
// candidate until budget pressure evicts it.
func (c *designCache) release(e *designEntry) {
	if e == nil {
		return
	}
	c.mu.Lock()
	e.refs--
	if e.refs < 0 {
		c.mu.Unlock()
		panic("designCache: reference count underflow")
	}
	e.lastUsed = c.now()
	c.mu.Unlock()
}

// evictLocked frees idle (refs==0) entries, largest first, until need
// more bytes fit under the budget or nothing idle remains. Callers hold
// c.mu.
func (c *designCache) evictLocked(need int64) {
	for c.charged+need > c.budget {
		var victim *designEntry
		for _, e := range c.entries {
			if e.refs == 0 && (victim == nil || e.bytes > victim.bytes) {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.charged -= victim.bytes
		c.evictions++
		c.logf("design cache: evicted idle design of %d bytes (charged now %d of %d)", victim.bytes, c.charged, c.budget)
	}
}

func (c *designCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := cacheStats{
		Budget:      c.budget,
		Charged:     c.charged,
		Entries:     len(c.entries),
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		BudgetSheds: c.budgetSheds,
	}
	for _, e := range c.entries {
		if e.refs > 0 {
			st.Referenced++
		}
	}
	return st
}
