package server

import (
	"repro/internal/report"
)

// Wire types: the JSON request and response bodies of the snad HTTP API.
// They live in their own file (and are exported) because the retrying
// client and the CLI decode them too — one schema, one definition.

// CreateSessionRequest loads a design into a named session. Database
// payloads are inline text in the repo's native formats; exactly one of
// Netlist (.net) or Verilog (structural .v) is required, the rest are
// optional.
type CreateSessionRequest struct {
	Name    string `json:"name"`
	Netlist string `json:"netlist,omitempty"`
	Verilog string `json:"verilog,omitempty"`
	SPEF    string `json:"spef,omitempty"`
	// Liberty is the cell library source; empty uses the built-in generic
	// library.
	Liberty string `json:"liberty,omitempty"`
	// Timing is input-timing (.win) text.
	Timing  string         `json:"timing,omitempty"`
	Options SessionOptions `json:"options"`
}

// SessionOptions mirrors the analysis knobs of the sna CLI.
type SessionOptions struct {
	// Mode is the combination policy: "all", "timing", or "noise"
	// (default).
	Mode string `json:"mode,omitempty"`
	// Threshold is the aggressor coupling-ratio filter threshold.
	Threshold float64 `json:"threshold,omitempty"`
	// NoPropagation disables noise propagation through gates.
	NoPropagation bool `json:"noPropagation,omitempty"`
	// LogicCorrelation enables mutual-exclusion aggressor filtering.
	LogicCorrelation bool `json:"logicCorrelation,omitempty"`
	// Workers sets the engine's parallel worker count (0 = serial).
	Workers int `json:"workers,omitempty"`
	// FailFast aborts a request on the first per-net failure instead of
	// degrading fail-soft. Fail-soft is the service default: one bad
	// victim must not take down the query.
	FailFast bool `json:"failFast,omitempty"`
	// InjectFault is a workload.RuntimeFaults spec
	// ("panic:b1,error:b2,sleep:*") wired into the engine's PrepareHook.
	// It exists for robustness testing of the service itself.
	InjectFault string `json:"injectFault,omitempty"`
}

// SessionInfo describes one loaded session.
type SessionInfo struct {
	Name string `json:"name"`
	// Analyzed reports whether the session holds a completed analysis.
	Analyzed bool `json:"analyzed"`
	// Suspect marks a session on which a request panicked at the handler
	// level; its in-memory state is still serving but deserves scrutiny.
	Suspect bool `json:"suspect"`
	// Breaker is the session's circuit-breaker state.
	Breaker BreakerInfo `json:"breaker"`
	// Victims/Violations/DegradedNets summarize the last analysis (zero
	// until Analyzed).
	Victims      int `json:"victims"`
	Violations   int `json:"violations"`
	DegradedNets int `json:"degradedNets"`
	// Persisted marks a session backed by the durable store: it survives
	// restarts and LRU eviction only unloads it from memory.
	Persisted bool `json:"persisted,omitempty"`
	// Loaded reports whether the session is materialized in memory. A
	// persisted session can be on disk only (LRU-evicted or beyond the
	// session cap at boot); any request to it transparently reloads it.
	Loaded bool `json:"loaded"`
	// Restored marks an in-memory session that was rebuilt from the
	// durable store — at boot, or lazily on access — rather than created
	// by a client since this process started; RecoveredAt (RFC3339) is
	// when the rebuild happened.
	Restored    bool   `json:"restored,omitempty"`
	RecoveredAt string `json:"recoveredAt,omitempty"`
}

// BreakerInfo reports a session circuit breaker.
type BreakerInfo struct {
	// Open reports that the breaker is tripped: analysis requests are
	// rejected with 503 until the cooldown elapses.
	Open bool `json:"open"`
	// ConsecutiveDegraded counts engine-degraded results in a row.
	ConsecutiveDegraded int `json:"consecutiveDegraded"`
	// RetryAfterS is the remaining cooldown in seconds when Open.
	RetryAfterS float64 `json:"retryAfterS,omitempty"`
}

// AnalyzeRequest tunes one analyze query (all fields optional).
type AnalyzeRequest struct {
	// Delay includes the crosstalk delta-delay section in the response.
	Delay bool `json:"delay,omitempty"`
}

// ReanalyzeRequest applies per-net late-edge window padding (seconds) and
// incrementally re-analyzes the affected cones. Padding is max-monotonic,
// so retrying a delta is safe.
type ReanalyzeRequest struct {
	Padding map[string]float64 `json:"padding"`
	// Delay includes the delta-delay section in the response.
	Delay bool `json:"delay,omitempty"`
}

// AnalyzeResponse is the result of an analyze, reanalyze, or iterate
// query.
type AnalyzeResponse struct {
	Session string             `json:"session"`
	Noise   *report.ResultJSON `json:"noise"`
	// Delay is present when the request asked for it.
	Delay *report.DelayResultJSON `json:"delay,omitempty"`
	// ChangedNets is the number of nets whose padding changed
	// (reanalyze only).
	ChangedNets int `json:"changedNets,omitempty"`
	// Rebuilt reports that the persistent session state was rebuilt from
	// scratch for this request (first analysis, or recovery after a
	// broken incremental update).
	Rebuilt bool `json:"rebuilt,omitempty"`
	// Iterate describes the joint noise–delay fixpoint loop (iterate
	// only).
	Iterate *IterateInfo `json:"iterate,omitempty"`
}

// IterateRequest runs the joint noise–delay padding fixpoint on a
// session, distributed across registered workers when the server has any.
// The fixpoint starts from the session's design and options; reanalyze
// padding does not seed it.
type IterateRequest struct {
	// Delay includes the final delta-delay section in the response.
	Delay bool `json:"delay,omitempty"`
	// MaxRounds bounds the outer loop (0 = server default of 8).
	MaxRounds int `json:"maxRounds,omitempty"`
	// Shards overrides the shard count for a distributed run (0 = one
	// shard per healthy worker).
	Shards int `json:"shards,omitempty"`
	// Local forces a single-process run even when workers are registered.
	// A healthy distributed run returns byte-identical noise and delay
	// sections either way; this is the escape hatch and the oracle knob.
	Local bool `json:"local,omitempty"`
}

// IterateInfo is the loop metadata of an iterate response. The noise and
// delay sections of the response are identical between a local and a
// healthy distributed run; everything that can differ lives here.
type IterateInfo struct {
	Rounds        int    `json:"rounds"`
	Converged     bool   `json:"converged"`
	Diverging     bool   `json:"diverging,omitempty"`
	DivergeReason string `json:"divergeReason,omitempty"`
	// Distributed reports that the run fanned out to workers; Workers and
	// Shards describe the fan-out.
	Distributed bool `json:"distributed,omitempty"`
	Workers     int  `json:"workers,omitempty"`
	Shards      int  `json:"shards,omitempty"`
	// Reassigns counts mid-run shard re-hostings after worker loss;
	// AbandonedShards lists shards that ran out of workers and were
	// degraded to conservative full-rail results.
	Reassigns       int   `json:"reassigns,omitempty"`
	AbandonedShards []int `json:"abandonedShards,omitempty"`
	// Resumed reports that the run continued from a persisted round
	// checkpoint instead of starting at round 1.
	Resumed bool `json:"resumed,omitempty"`
}

// RegisterWorkerRequest announces a shard worker to the coordinator.
// Registration is idempotent per name: re-registering replaces the URL.
type RegisterWorkerRequest struct {
	// Name identifies the worker (defaults to the URL).
	Name string `json:"name,omitempty"`
	// URL is the worker's snad base URL (e.g. "http://127.0.0.1:8351").
	URL string `json:"url"`
}

// WorkerInfo reports one registered worker's health.
type WorkerInfo struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Healthy is the last heartbeat's verdict; a worker starts healthy on
	// registration and is probed every heartbeat interval.
	Healthy bool `json:"healthy"`
	// LastSeenAt is the last successful heartbeat (RFC3339); empty until
	// the first one lands.
	LastSeenAt string `json:"lastSeenAt,omitempty"`
}

// LintDiagJSON is one design-rule finding in a 422 rejection.
type LintDiagJSON struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Object   string `json:"object"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

// ErrorBody is the structured error envelope every non-2xx response
// carries.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo describes one failure.
type ErrorInfo struct {
	// Kind is a stable machine-readable class: bad_request, not_found,
	// conflict, busy, lint_rejected, overloaded, breaker_open, draining,
	// deadline, canceled, panic, engine, session_limit, storage (a
	// lifecycle change could not be journaled; retryable), budget (the
	// server-wide memory budget cannot fit another design; retryable
	// once sessions are deleted or go idle), unreplayable (a persisted
	// session failed to re-materialize and was quarantined),
	// shard_broken (a shard engine needs re-init before further ops), and
	// shard_fatal (a deterministic shard failure that would recur on any
	// worker).
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Session string `json:"session,omitempty"`
	// Lint carries the findings of a lint_rejected error.
	Lint []LintDiagJSON `json:"lint,omitempty"`
}

// HealthResponse is the /healthz body. The endpoint answers 200 as long
// as the process is alive, including while draining — liveness and
// readiness are separate questions.
type HealthResponse struct {
	Status   string `json:"status"` // "ok" | "draining"
	Draining bool   `json:"draining"`
	Sessions int    `json:"sessions"`
	Inflight int    `json:"inflight"`
}

// ReadyResponse is the /readyz body; the endpoint answers 503 while
// draining so load balancers stop routing new work here.
type ReadyResponse struct {
	Status string `json:"status"` // "ready" | "draining"
	// Inflight and Queued are the admission gate's current occupancy;
	// Capacity and QueueDepth its limits.
	Inflight   int `json:"inflight"`
	Queued     int `json:"queued"`
	Capacity   int `json:"capacity"`
	QueueDepth int `json:"queueDepth"`
	Sessions   int `json:"sessions"`
	// Shed counts requests rejected with 429 since startup.
	Shed int64 `json:"shed"`
	// OpenBreakers lists sessions whose breaker is currently open.
	OpenBreakers []string `json:"openBreakers,omitempty"`
	// Durable reports that the server runs with a data directory;
	// StorageDegraded that at least one journal append has failed since
	// startup (lifecycle changes may be refused with 503 storage until the
	// disk recovers — analysis of loaded sessions keeps working).
	Durable         bool `json:"durable,omitempty"`
	StorageDegraded bool `json:"storageDegraded,omitempty"`
	// JobsQueued/JobsRunning are the async job subsystem's gauges: jobs
	// waiting for a job worker and jobs currently executing.
	JobsQueued  int `json:"jobsQueued"`
	JobsRunning int `json:"jobsRunning"`
	// Memory governance: MemBudget is the configured byte budget (0 =
	// unlimited); MemCharged the bytes charged to cached designs;
	// CachedDesigns the entries resident in the shared design cache;
	// CacheHits/CacheEvictions/BudgetSheds its lifetime counters. A
	// BudgetShed is a request refused with 503 kind "budget".
	MemBudget      int64 `json:"memBudget"`
	MemCharged     int64 `json:"memCharged"`
	CachedDesigns  int   `json:"cachedDesigns"`
	CacheHits      int64 `json:"cacheHits"`
	CacheEvictions int64 `json:"cacheEvictions"`
	BudgetSheds    int64 `json:"budgetSheds"`
}

// JobsResponse is the body of GET /v1/jobs.
type JobsResponse struct {
	Jobs []report.JobJSON `json:"jobs"`
}
