package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
)

// session owns one loaded design and its persistent incremental analyzer.
//
// Locking discipline: mu serializes the expensive engine work (exactly one
// analysis runs per session at a time; core.Session is not concurrency
// safe). stateMu guards the cheap observable state — breaker counters,
// cached reports, suspect flag — which health and report endpoints read
// without waiting behind a running analysis. lastUsed is guarded by the
// server's registry lock, because LRU ordering is a registry concern.
type session struct {
	name string
	b    *bind.Design
	opts core.Options

	// mu serializes engine work on this session.
	mu sync.Mutex
	// eng is the persistent incremental analyzer; nil until the first
	// analyze request, rebuilt after a broken incremental update.
	eng *core.Session

	stateMu sync.Mutex
	// suspect marks a handler-level panic observed on this session.
	suspect bool
	// analyzed and the summary counters describe the last completed
	// analysis; lastResponse is its marshaled body for GET report.
	analyzed     bool
	victims      int
	violations   int
	degradedNets int
	lastResponse []byte
	// breaker state: consecutive engine-degraded results and the trip
	// deadline.
	consecDegraded int
	trippedUntil   time.Time
}

// ensureEngine returns the session's persistent analyzer, building (or
// rebuilding, after a broken update) it with a full analysis. Callers hold
// s.mu. The returned bool reports whether a rebuild happened.
func (s *session) ensureEngine(ctx context.Context) (*core.Session, bool, error) {
	if s.eng != nil && s.eng.Err() == nil {
		return s.eng, false, nil
	}
	s.eng = nil // drop broken state before the rebuild
	eng, err := core.NewSession(ctx, s.b, s.opts)
	if err != nil {
		return nil, true, err
	}
	s.eng = eng
	return eng, true, nil
}

// markSuspect records a handler-level panic against the session.
func (s *session) markSuspect() {
	s.stateMu.Lock()
	s.suspect = true
	s.stateMu.Unlock()
}

// breakerOpen reports whether the breaker currently rejects work and the
// remaining cooldown. At the trip deadline the breaker goes half-open: the
// next request is admitted, and its outcome decides whether the breaker
// resets or re-trips.
func (s *session) breakerOpen(now time.Time) (time.Duration, bool) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if now.Before(s.trippedUntil) {
		return s.trippedUntil.Sub(now), true
	}
	return 0, false
}

// recordOutcome feeds one completed analysis into the breaker: an
// engine-degraded result (fail-soft Diags, or an outright engine error)
// counts against the session; a clean result resets it. Tripping arms a
// cooldown during which requests are shed with 503.
func (s *session) recordOutcome(degraded bool, now time.Time, trips int, cooldown time.Duration) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if !degraded {
		s.consecDegraded = 0
		return
	}
	s.consecDegraded++
	if s.consecDegraded >= trips {
		s.trippedUntil = now.Add(cooldown)
	}
}

// recordResult caches the summary and marshaled body of a completed
// analysis for the report and info endpoints.
func (s *session) recordResult(resp *AnalyzeResponse, body []byte) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.analyzed = true
	s.victims = resp.Noise.Stats.Victims
	s.violations = len(resp.Noise.Violations)
	s.degradedNets = resp.Noise.Stats.DegradedNets
	s.lastResponse = body
}

// report returns the cached last analysis body, or nil.
func (s *session) report() []byte {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.lastResponse
}

// info snapshots the session for the info and list endpoints.
func (s *session) info(now time.Time) SessionInfo {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	bi := BreakerInfo{ConsecutiveDegraded: s.consecDegraded}
	if now.Before(s.trippedUntil) {
		bi.Open = true
		bi.RetryAfterS = s.trippedUntil.Sub(now).Seconds()
	}
	return SessionInfo{
		Name:         s.name,
		Analyzed:     s.analyzed,
		Suspect:      s.suspect,
		Breaker:      bi,
		Victims:      s.victims,
		Violations:   s.violations,
		DegradedNets: s.degradedNets,
	}
}
