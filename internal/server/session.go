package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
)

// session owns one loaded design and its persistent incremental analyzer.
//
// Locking discipline: busy is a one-slot semaphore serializing the
// expensive engine work (exactly one analysis runs per session at a time;
// core.Session is not concurrency safe). It is a channel rather than a
// mutex for two reasons: acquisition is a select against the request and
// drain contexts, so a deadline can interrupt the wait instead of pinning
// a worker uncancellably behind a slow session, and release is deferred so
// a panicking handler cannot leak the slot and wedge the session. stateMu
// guards the cheap observable state — breaker counters, cached reports,
// suspect flag — which health and report endpoints read without waiting
// behind a running analysis. refs and lastUsed are guarded by the server's
// registry lock, because eviction ordering is a registry concern.
type session struct {
	name string
	b    *bind.Design
	opts core.Options

	// entry is the shared design-cache entry b came from; the session
	// holds one reference for its lifetime in the registry, released by
	// whichever path removes it (dropSessionLocked, create unwind).
	entry *designEntry

	// spec is the create request the session was built from, retained so
	// a distributed iterate can ship the same sources to remote workers.
	// Immutable after create.
	spec *CreateSessionRequest

	// padding is the cumulative per-net window padding every reanalyze has
	// applied, mirrored from the engine after each successful delta. It is
	// what the durable store journals, and what re-seeds the engine when a
	// restored or re-materialized session rebuilds (guarded by busy, like
	// the engine it mirrors).
	padding map[string]float64

	// persisted marks a session backed by the durable store: evicting it
	// only drops the in-memory copy, and deleting it requires a journaled
	// tombstone. restored/recoveredAt report that this in-memory object was
	// rebuilt from disk (at boot or on a lazy revive) rather than created
	// by a client in this process's lifetime.
	persisted   bool
	restored    bool
	recoveredAt time.Time

	// pending hides a session whose create record is being journaled;
	// deleting hides one whose tombstone is. Both are guarded by the
	// server's registry mutex and make the session invisible to lookups
	// while durable state catches up with in-memory state.
	pending  bool
	deleting bool

	// busy serializes engine work on this session; see the type comment.
	busy chan struct{}

	// refs counts in-flight requests pinned to this session (guarded by
	// the server's registry mutex). Only a session with zero references
	// may be evicted or deleted, so an admitted request never completes
	// against an orphaned session whose cached result is unreachable.
	refs int

	// eng is the persistent incremental analyzer; nil until the first
	// analyze request, rebuilt after a broken incremental update. Guarded
	// by busy.
	eng *core.Session

	stateMu sync.Mutex
	// suspect marks a handler-level panic observed on this session.
	suspect bool
	// analyzed and the summary counters describe the last completed
	// analysis; lastResponse is its marshaled body for GET report.
	analyzed     bool
	victims      int
	violations   int
	degradedNets int
	lastResponse []byte
	// breaker state: consecutive engine-degraded results, whether the
	// breaker is tripped (it stays tripped through half-open until a clean
	// probe closes it), whether a half-open probe is in flight, and the
	// cooldown deadline.
	consecDegraded int
	tripped        bool
	probing        bool
	trippedUntil   time.Time
}

// acquire takes the session's busy slot, waiting until the slot frees, the
// request context expires, or the drain force-cancel fires. It reports
// whether the slot was taken; on success the caller must release().
func (s *session) acquire(ctx context.Context, force context.Context) bool {
	select {
	case s.busy <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	case <-force.Done():
		return false
	}
}

func (s *session) release() { <-s.busy }

// ensureEngine returns the session's persistent analyzer, building (or
// rebuilding, after a broken update) it with a full analysis. Callers hold
// the busy slot. The returned bool reports whether a rebuild happened.
//
// The rebuild seeds the engine with the session's cumulative padding, so a
// session restored from the durable store — or rebuilt after a broken
// incremental update — lands on exactly the state its reanalyze history
// reached: core.NewSession applies seeded padding inside its full
// analysis, and the engine oracle pins that this equals applying the same
// deltas incrementally.
func (s *session) ensureEngine(ctx context.Context) (*core.Session, bool, error) {
	if s.eng != nil && s.eng.Err() == nil {
		return s.eng, false, nil
	}
	s.eng = nil // drop broken state before the rebuild
	opts := s.opts
	if len(s.padding) > 0 {
		seed := make(map[string]float64, len(s.padding))
		for net, pad := range s.padding {
			seed[net] = pad
		}
		opts.STA.WindowPadding = seed
	}
	eng, err := core.NewSession(ctx, s.b, opts)
	if err != nil {
		return nil, true, err
	}
	s.eng = eng
	return eng, true, nil
}

// isRestored reports that the session was rebuilt from the durable store.
func (s *session) isRestored() bool { return s.restored }

// markSuspect records a handler-level panic against the session.
func (s *session) markSuspect() {
	s.stateMu.Lock()
	s.suspect = true
	s.stateMu.Unlock()
}

// breakerOpen reports whether the breaker currently rejects work and the
// remaining cooldown. It is a pure read for the readiness and info
// endpoints; analysis admission goes through breakerAdmit, which also
// arbitrates the half-open probe.
func (s *session) breakerOpen(now time.Time) (time.Duration, bool) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if now.Before(s.trippedUntil) {
		return s.trippedUntil.Sub(now), true
	}
	return 0, false
}

// breakerAdmit decides whether an analysis request may run. While the
// cooldown is running every request is rejected with the remaining wait.
// At the trip deadline the breaker goes half-open: exactly one request is
// admitted as the probe (probe=true; the caller must probeRelease() when
// it finishes) and concurrent requests are rejected with the hint until
// the probe's outcome decides — via recordOutcome — whether the breaker
// resets or re-trips.
func (s *session) breakerAdmit(now time.Time, hint time.Duration) (retryAfter time.Duration, probe, open bool) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if now.Before(s.trippedUntil) {
		return s.trippedUntil.Sub(now), false, true
	}
	if !s.tripped {
		return 0, false, false
	}
	if s.probing {
		return hint, false, true
	}
	s.probing = true
	return 0, true, false
}

// probeRelease ends a half-open probe, letting the next request probe (or
// run freely, if the probe's outcome closed the breaker). It is safe to
// call whether or not the probe reached recordOutcome — cancelled and
// panicked probes must release too, or the breaker would reject forever.
func (s *session) probeRelease() {
	s.stateMu.Lock()
	s.probing = false
	s.stateMu.Unlock()
}

// recordOutcome feeds one completed analysis into the breaker: an
// engine-degraded result (fail-soft Diags, or an outright engine error)
// counts against the session; a clean result resets it. Tripping arms a
// cooldown during which requests are shed with 503. A degraded result
// while the breaker is tripped — i.e. a failed half-open probe — re-trips
// immediately rather than waiting for the consecutive threshold again.
func (s *session) recordOutcome(degraded bool, now time.Time, trips int, cooldown time.Duration) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if !degraded {
		s.consecDegraded = 0
		s.tripped = false
		s.trippedUntil = time.Time{}
		return
	}
	s.consecDegraded++
	if s.tripped || s.consecDegraded >= trips {
		s.tripped = true
		s.trippedUntil = now.Add(cooldown)
	}
}

// recordResult caches the summary and marshaled body of a completed
// analysis for the report and info endpoints.
func (s *session) recordResult(resp *AnalyzeResponse, body []byte) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.analyzed = true
	s.victims = resp.Noise.Stats.Victims
	s.violations = len(resp.Noise.Violations)
	s.degradedNets = resp.Noise.Stats.DegradedNets
	s.lastResponse = body
}

// report returns the cached last analysis body, or nil.
func (s *session) report() []byte {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.lastResponse
}

// info snapshots the session for the info and list endpoints.
func (s *session) info(now time.Time) SessionInfo {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	bi := BreakerInfo{ConsecutiveDegraded: s.consecDegraded}
	if now.Before(s.trippedUntil) {
		bi.Open = true
		bi.RetryAfterS = s.trippedUntil.Sub(now).Seconds()
	}
	info := SessionInfo{
		Name:         s.name,
		Analyzed:     s.analyzed,
		Suspect:      s.suspect,
		Breaker:      bi,
		Victims:      s.victims,
		Violations:   s.violations,
		DegradedNets: s.degradedNets,
		Persisted:    s.persisted,
		Loaded:       true,
		Restored:     s.restored,
	}
	if s.restored && !s.recoveredAt.IsZero() {
		info.RecoveredAt = s.recoveredAt.UTC().Format(time.RFC3339Nano)
	}
	return info
}
