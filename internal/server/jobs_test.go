package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/report"
)

func waitJobHTTP(t *testing.T, base, id string, state string) *report.JobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data := do(t, "GET", base+"/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status %s: %d: %s", id, resp.StatusCode, data)
		}
		var j report.JobJSON
		if err := json.Unmarshal(data, &j); err != nil {
			t.Fatalf("job body: %v\n%s", err, data)
		}
		if (state == "" && j.Terminal()) || j.State == state {
			return &j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s): %s", id, j.State, state, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func submitJob(t *testing.T, base string, spec jobs.Spec) *report.JobJSON {
	t.Helper()
	resp, data := do(t, "POST", base+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var j report.JobJSON
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("submit body: %v\n%s", err, data)
	}
	return &j
}

func TestJobLifecycleHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "bus", SessionOptions{})

	ack := submitJob(t, ts.URL, jobs.Spec{Session: "bus", Type: "analyze", Delay: true})
	if ack.State != "queued" || ack.ID == "" {
		t.Fatalf("202 ack = %+v", ack)
	}
	done := waitJobHTTP(t, ts.URL, ack.ID, "done")
	var result AnalyzeResponse
	if err := json.Unmarshal(done.Result, &result); err != nil {
		t.Fatalf("job result: %v", err)
	}
	if result.Noise == nil || result.Noise.Stats.Victims == 0 || result.Delay == nil {
		t.Fatalf("job result missing sections: %+v", result)
	}

	// The job's analysis is the session's cached report now.
	resp, data := do(t, "GET", ts.URL+"/v1/sessions/bus/report", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report after job: %d: %s", resp.StatusCode, data)
	}

	// Listing includes the job; readyz exposes the gauges.
	resp, data = do(t, "GET", ts.URL+"/v1/jobs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list JobsResponse
	if err := json.Unmarshal(data, &list); err != nil || len(list.Jobs) != 1 || list.Jobs[0].ID != ack.ID {
		t.Fatalf("list = %s (%v)", data, err)
	}
	resp, data = do(t, "GET", ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"jobsQueued"`) {
		t.Fatalf("readyz lacks job gauges: %d %s", resp.StatusCode, data)
	}
}

func TestJobSweepHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "bus", SessionOptions{})

	ack := submitJob(t, ts.URL, jobs.Spec{Session: "bus", Type: "sweep", Sweep: []jobs.SweepPoint{
		{Mode: "all"}, {Mode: "noise"}, {Mode: "timing", Threshold: 0.05},
	}})
	done := waitJobHTTP(t, ts.URL, ack.ID, "done")
	var result SweepResult
	if err := json.Unmarshal(done.Result, &result); err != nil {
		t.Fatalf("sweep result: %v", err)
	}
	if len(result.Points) != 3 || result.Points[0].Mode != "all" || result.Points[2].Threshold != 0.05 {
		t.Fatalf("sweep points = %+v", result.Points)
	}
	// Noise-window mode is never more pessimistic than all-aggressors.
	if nv, av := len(result.Points[1].Noise.Violations), len(result.Points[0].Noise.Violations); nv > av {
		t.Fatalf("noise mode found more violations than all mode: %d > %d", nv, av)
	}
}

func TestJobUnknownSessionFailsFast(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ack := submitJob(t, ts.URL, jobs.Spec{Session: "ghost", Type: "analyze"})
	failed := waitJobHTTP(t, ts.URL, ack.ID, "failed")
	// Permanent failure: one attempt, no quarantine, cause in the error.
	if failed.Attempts != 1 || failed.Quarantined || !strings.Contains(failed.Error, "ghost") {
		t.Fatalf("unknown-session job = %+v", failed)
	}
}

func TestJobValidationAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := do(t, "POST", ts.URL+"/v1/jobs", jobs.Spec{Session: "s", Type: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "bad_request")
	resp, data = do(t, "GET", ts.URL+"/v1/jobs/job-999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
	wantErrKind(t, data, "not_found")
	resp, data = do(t, "DELETE", ts.URL+"/v1/jobs/job-999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel missing job: %d", resp.StatusCode)
	}
	wantErrKind(t, data, "not_found")
}

// A poison job (injected to panic on every attempt) must quarantine with
// Diag records while the server keeps serving — interactive and batch.
func TestJobPoisonQuarantineKeepsServing(t *testing.T) {
	_, ts := newTestServer(t, Config{JobFaultSpec: "panic:reanalyze:*"})
	createSession(t, ts.URL, "bus", SessionOptions{})

	ack := submitJob(t, ts.URL, jobs.Spec{
		Session: "bus", Type: "reanalyze",
		Padding:     map[string]float64{"b0": 10e-12},
		MaxAttempts: 2,
	})
	failed := waitJobHTTP(t, ts.URL, ack.ID, "failed")
	if !failed.Quarantined || len(failed.Diags) != 2 {
		t.Fatalf("poison job = %+v", failed)
	}
	for _, d := range failed.Diags {
		if d.Stage != "panic" {
			t.Fatalf("diag = %+v", d)
		}
	}

	// The server survived: interactive analyze works, and so does a job
	// of a type the fault spec does not match.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions/bus/analyze", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze after poison: %d: %s", resp.StatusCode, data)
	}
	good := submitJob(t, ts.URL, jobs.Spec{Session: "bus", Type: "analyze"})
	waitJobHTTP(t, ts.URL, good.ID, "done")

	// Metrics expose the quarantine.
	resp, data = do(t, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{"snad_jobs_quarantined_total 1", "snad_jobs_done_total 1", "snad_jobs_queued 0"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("metrics missing %q:\n%s", want, data)
		}
	}
}

// Bounded job admission: past JobQueueDepth waiting jobs, POST /v1/jobs
// sheds with 429 + Retry-After.
func TestJobQueueSheds(t *testing.T) {
	_, ts := newTestServer(t, Config{
		JobWorkers:    1,
		JobQueueDepth: 1,
		JobFaultSpec:  "hang:analyze:*",
	})
	createSession(t, ts.URL, "bus", SessionOptions{})

	running := submitJob(t, ts.URL, jobs.Spec{Session: "bus", Type: "analyze"})
	waitJobHTTP(t, ts.URL, running.ID, "running")
	submitJob(t, ts.URL, jobs.Spec{Session: "bus", Type: "analyze"})

	resp, data := do(t, "POST", ts.URL+"/v1/jobs", jobs.Spec{Session: "bus", Type: "analyze"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "overloaded")
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// DELETE cancels the hung job: 202 while the attempt unwinds, then
	// the job lands canceled without burning its retry budget further.
	resp, data = do(t, "DELETE", ts.URL+"/v1/jobs/"+running.ID, nil)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: %d: %s", resp.StatusCode, data)
	}
	canceled := waitJobHTTP(t, ts.URL, running.ID, "canceled")
	if canceled.Quarantined {
		t.Fatalf("canceled job = %+v", canceled)
	}
	// Canceling a terminal job conflicts.
	resp, data = do(t, "DELETE", ts.URL+"/v1/jobs/"+running.ID, nil)
	if resp.StatusCode != http.StatusOK {
		// Already canceled is idempotent 200; anything else is a bug.
		t.Fatalf("re-cancel: %d: %s", resp.StatusCode, data)
	}
}

// Jobs survive a server restart: a running job interrupted by shutdown
// re-enqueues (drain refunds the attempt) and completes under the next
// process.
func TestJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{DataDir: dir, JobFaultSpec: "hang:iterate:*"})
	createSession(t, ts1.URL, "bus", SessionOptions{})
	ack := submitJob(t, ts1.URL, jobs.Spec{Session: "bus", Type: "iterate", Local: true})
	waitJobHTTP(t, ts1.URL, ack.ID, "running")
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	done := waitJobHTTP(t, ts2.URL, ack.ID, "done")
	if done.Attempts != 1 {
		t.Fatalf("restarted job = %+v (want the drained attempt refunded)", done)
	}
	var result AnalyzeResponse
	if err := json.Unmarshal(done.Result, &result); err != nil || result.Iterate == nil {
		t.Fatalf("iterate job result: %v: %s", err, done.Result)
	}
}

// Submits refused by a sick disk are 503 storage with nothing enqueued —
// the no-lost-ack contract over HTTP.
func TestJobSubmitStorageFault(t *testing.T) {
	dir := t.TempDir()
	// The fault rules count appends across both WALs; the session create
	// consumes the first append, so the second lands on the job submit.
	_, ts := newTestServer(t, Config{DataDir: dir, StoreFaultSpec: "enospc:append:2"})
	createSession(t, ts.URL, "bus", SessionOptions{})
	resp, data := do(t, "POST", ts.URL+"/v1/jobs", jobs.Spec{Session: "bus", Type: "analyze"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit under fault: %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "storage")
	var list JobsResponse
	_, data = do(t, "GET", ts.URL+"/v1/jobs", nil)
	if err := json.Unmarshal(data, &list); err != nil || len(list.Jobs) != 0 {
		t.Fatalf("refused submit left jobs: %s", data)
	}
}

func TestJobReanalyzePersistsPadding(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{DataDir: dir})
	createSession(t, ts1.URL, "bus", SessionOptions{})
	ack := submitJob(t, ts1.URL, jobs.Spec{
		Session: "bus", Type: "reanalyze",
		Padding: map[string]float64{"b0": 15e-12},
	})
	done := waitJobHTTP(t, ts1.URL, ack.ID, "done")
	var result AnalyzeResponse
	if err := json.Unmarshal(done.Result, &result); err != nil || result.ChangedNets == 0 {
		t.Fatalf("reanalyze job = %v: %s", err, done.Result)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// The padding journaled by the job replays into the restored session:
	// re-applying the same delta is absorbed (0 changed nets).
	_, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, data := do(t, "POST", ts2.URL+"/v1/sessions/bus/reanalyze", ReanalyzeRequest{
		Padding: map[string]float64{"b0": 15e-12},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reanalyze after restart: %d: %s", resp.StatusCode, data)
	}
	var rr AnalyzeResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ChangedNets != 0 {
		t.Fatalf("padding not persisted by job: %d nets changed on replayed delta", rr.ChangedNets)
	}
}

func TestMetricsServesWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if !s.Drain(time.Second) {
		t.Fatal("empty server did not drain cleanly")
	}
	resp, data := do(t, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "snad_draining 1") {
		t.Fatalf("metrics while draining: %d\n%s", resp.StatusCode, data)
	}
	// Regular endpoints are refused.
	resp, data = do(t, "GET", ts.URL+"/v1/jobs", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("list while draining: %d", resp.StatusCode)
	}
	wantErrKind(t, data, "draining")
}

// Iterate jobs checkpoint at round boundaries under the jobs data dir,
// keyed by job ID, and the checkpoint is cleared once the job finishes.
func TestJobIterateCheckpointCleared(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir})
	createSession(t, ts.URL, "bus", SessionOptions{})
	ack := submitJob(t, ts.URL, jobs.Spec{Session: "bus", Type: "iterate", Local: true, MaxRounds: 3})
	waitJobHTTP(t, ts.URL, ack.ID, "done")
	entries, err := filepath.Glob(fmt.Sprintf("%s/jobs/checkpoints/*", dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("checkpoints left after terminal job: %v", entries)
	}
}
