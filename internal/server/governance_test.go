package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bind"
)

// doTenant is do with an X-Snad-Tenant header attached.
func doTenant(t *testing.T, method, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitFor polls cond until true or a generous deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSharedDesignCache pins the tentpole's sharing contract: two
// sessions over byte-identical sources bind ONE design (pointer identity
// in the cache), and deleting one must not unbind the other.
func TestSharedDesignCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	p := busPayload(t, "a", 4, SessionOptions{})
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", p)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create a: %d: %s", resp.StatusCode, data)
	}
	p.Name = "b" // same sources, different name
	resp, data = do(t, "POST", ts.URL+"/v1/sessions", p)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create b: %d: %s", resp.StatusCode, data)
	}

	s.mu.Lock()
	ea, eb := s.sessions["a"].entry, s.sessions["b"].entry
	s.mu.Unlock()
	if ea == nil || ea != eb {
		t.Fatalf("sessions over identical sources must share one cache entry (a=%p b=%p)", ea, eb)
	}
	cs := s.cache.stats()
	if cs.Entries != 1 || cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 entry, 1 miss, 1 hit", cs)
	}

	// Deleting a releases its reference but must not unbind b.
	resp, data = do(t, "DELETE", ts.URL+"/v1/sessions/a", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete a: %d: %s", resp.StatusCode, data)
	}
	resp, data = do(t, "POST", ts.URL+"/v1/sessions/b/analyze", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze b after deleting a: %d: %s", resp.StatusCode, data)
	}
	cs = s.cache.stats()
	if cs.Entries != 1 || cs.Referenced != 1 {
		t.Fatalf("after delete: stats = %+v, want the shared entry still resident and referenced", cs)
	}
}

// TestMemBudgetShedEvictRecover measures two designs, then sizes the
// budget so either fits alone but not both: the second create must shed
// 503 "budget" with Retry-After, and after the first session is deleted
// the same create must succeed by evicting the now-idle design.
func TestMemBudgetShedEvictRecover(t *testing.T) {
	// Measure on an unbudgeted server.
	m, mts := newTestServer(t, Config{})
	resp, data := do(t, "POST", mts.URL+"/v1/sessions", busPayload(t, "m4", 4, SessionOptions{}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("measure m4: %d: %s", resp.StatusCode, data)
	}
	sizeA := m.cache.stats().Charged
	resp, data = do(t, "POST", mts.URL+"/v1/sessions", busPayload(t, "m6", 6, SessionOptions{}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("measure m6: %d: %s", resp.StatusCode, data)
	}
	sizeB := m.cache.stats().Charged - sizeA
	if sizeA <= 0 || sizeB <= 0 {
		t.Fatalf("design sizes = %d, %d; MemBytes estimators broken?", sizeA, sizeB)
	}

	s, ts := newTestServer(t, Config{MemBudget: sizeA + sizeB - 1})
	resp, data = do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "a", 4, SessionOptions{}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create a: %d: %s", resp.StatusCode, data)
	}

	// b does not fit beside the referenced a: 503 kind "budget" with a
	// well-formed Retry-After.
	resp, data = do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "b", 6, SessionOptions{}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget create: %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "budget")
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra <= 0 {
		t.Fatalf("budget shed Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
	if cs := s.cache.stats(); cs.BudgetSheds == 0 {
		t.Fatalf("stats = %+v, want a budget shed counted", cs)
	}

	// Delete a → its design goes idle → the retried create evicts it.
	resp, data = do(t, "DELETE", ts.URL+"/v1/sessions/a", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete a: %d: %s", resp.StatusCode, data)
	}
	resp, data = do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "b", 6, SessionOptions{}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create b after delete: %d: %s", resp.StatusCode, data)
	}
	cs := s.cache.stats()
	if cs.Evictions == 0 || cs.Charged > s.cache.budget {
		t.Fatalf("stats = %+v, want an idle eviction and charged <= budget", cs)
	}
}

// TestSingleFlightRevive is the re-materialization stampede regression:
// N concurrent requests hit a session that was LRU-evicted (and whose
// design was dropped from the cache), and the slow parse/lint/bind must
// run exactly once — every other request coalesces onto it.
func TestSingleFlightRevive(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir, MaxSessions: 1, MaxConcurrent: 8, QueueDepth: 32})
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "a", 4, SessionOptions{}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create a: %d: %s", resp.StatusCode, data)
	}
	// Creating b LRU-evicts the idle session a (MaxSessions 1); a's spec
	// stays on disk.
	resp, data = do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "b", 5, SessionOptions{}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create b: %d: %s", resp.StatusCode, data)
	}
	// Drop a's now-idle design from the cache so the revive is a true
	// rebuild, not a warm hit.
	s.cache.mu.Lock()
	for k, e := range s.cache.entries {
		if e.refs == 0 {
			delete(s.cache.entries, k)
			s.cache.charged -= e.bytes
		}
	}
	s.cache.mu.Unlock()

	// Count builds and slow them down so the stampede window is wide. Set
	// before any goroutine fires; acquire reads it under the cache mutex.
	var builds atomic.Int32
	s.cache.buildHook = func() {
		builds.Add(1)
		time.Sleep(100 * time.Millisecond)
	}

	const N = 8
	var wg sync.WaitGroup
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := do(t, "POST", ts.URL+"/v1/sessions/a/analyze", nil)
			codes[i] = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				t.Logf("analyze %d: %d: %s", i, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("concurrent revive request %d: status %d", i, c)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want exactly 1 (single-flight)", n)
	}
}

// TestCoalescedAcquireHonorsCancel pins the waiter-withdrawal contract:
// an acquire that coalesces onto an in-flight build and whose context
// expires mid-build must return a "canceled" shed instead of blocking
// until the build finishes — and the builder must not grant the departed
// waiter a reference.
func TestCoalescedAcquireHonorsCancel(t *testing.T) {
	req := busPayload(t, "a", 4, SessionOptions{})
	src := sourcesOf(&req)
	c := newDesignCache(0, time.Now, t.Logf)
	started := make(chan struct{})
	unblock := make(chan struct{})
	c.buildHook = func() { close(started); <-unblock }
	build := func() (*bind.Design, *ErrorInfo) { return buildDesign(src, nil) }

	var e1 *designEntry
	var einfo1 *ErrorInfo
	builderDone := make(chan struct{})
	go func() {
		defer close(builderDone)
		e1, einfo1 = c.acquire(context.Background(), src, build)
	}()
	<-started // the build call is registered and parked in the hook

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e2, einfo2 := c.acquire(ctx, src, build) // coalesces, then withdraws
	if e2 != nil || einfo2 == nil || einfo2.Kind != "canceled" {
		t.Fatalf("canceled waiter: entry=%v einfo=%+v, want nil entry and kind \"canceled\"", e2, einfo2)
	}

	close(unblock)
	<-builderDone
	if einfo1 != nil || e1 == nil {
		t.Fatalf("builder: entry=%v einfo=%+v, want a successful build", e1, einfo1)
	}
	c.mu.Lock()
	refs := e1.refs
	c.mu.Unlock()
	if refs != 1 {
		t.Fatalf("entry refs = %d, want 1 (the withdrawn waiter must not hold a reference)", refs)
	}
	c.release(e1) // must not underflow: exactly the builder's reference remains
}

// TestTenantStarvation drives a bulk tenant that floods the one-worker
// gate with slow analyses and asserts an interactive tenant still gets
// through promptly — round-robin dispatch, not FIFO behind the flood.
func TestTenantStarvation(t *testing.T) {
	const bulkN = 10
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 64, MaxSessions: bulkN + 4})
	// Each bulk client gets its own session over the same slow sources
	// (16-bit bus, "sleep:*" per-net sleeps) so EVERY bulk analyze is a
	// slow first-analysis — a single shared session would be incremental
	// (and instant) after the first one, and the backlog would drain
	// before the live request could demonstrate anything. The live
	// session is a fast 4-bit bus.
	slow := busPayload(t, "", 16, SessionOptions{InjectFault: "sleep:*"})
	for i := 0; i < bulkN; i++ {
		slow.Name = fmt.Sprintf("slow-%d", i)
		resp, data := do(t, "POST", ts.URL+"/v1/sessions", slow)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d: %s", slow.Name, resp.StatusCode, data)
		}
	}
	createSession(t, ts.URL, "fast", SessionOptions{})
	// Warm the fast engine so the interactive request below measures
	// scheduling, not first-build cost.
	if resp, data := do(t, "POST", ts.URL+"/v1/sessions/fast/analyze", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm fast: %d: %s", resp.StatusCode, data)
	}

	var bulkDone atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < bulkN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doTenant(t, "POST", ts.URL+"/v1/sessions/slow-"+strconv.Itoa(i)+"/analyze", "bulk", nil)
			bulkDone.Add(1)
		}(i)
	}
	// Fire live only once the whole flood is in the gate — one bulk
	// running, nine queued — so the dispatch order is deterministic.
	waitFor(t, func() bool {
		running, queued := s.gate.snapshot()
		return running == 1 && queued == bulkN-1
	})

	resp, data := doTenant(t, "POST", ts.URL+"/v1/sessions/fast/analyze", "live", nil)
	doneWhenLiveFinished := bulkDone.Load()
	wg.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live analyze under flood: %d: %s", resp.StatusCode, data)
	}
	// Round-robin admits live after at most a couple of bulk slots (the
	// running one plus one ring rotation); global FIFO would make it
	// wait out the entire nine-deep backlog.
	if doneWhenLiveFinished > 4 {
		t.Fatalf("live request waited behind %d of %d bulk requests — starved behind the flood", doneWhenLiveFinished, bulkN)
	}
}

// TestShedPathsCarryRetryAfter is the shed-consistency table: every
// refusal the server can emit under load — admission queue full, memory
// budget, draining, breaker, session cap, storage failure, job queue
// full — must be a 429/503 with a positive integer Retry-After and a
// structured JSON error body of the right kind.
func TestShedPathsCarryRetryAfter(t *testing.T) {
	cases := []struct {
		name       string
		wantStatus int
		wantKind   string
		fire       func(t *testing.T) (*http.Response, []byte)
	}{
		{
			name: "admission queue full", wantStatus: http.StatusTooManyRequests, wantKind: "overloaded",
			fire: func(t *testing.T) (*http.Response, []byte) {
				s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
				createSession(t, ts.URL, "slow", SessionOptions{InjectFault: "sleep:*"})
				var wg sync.WaitGroup
				for i := 0; i < 2; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						do(t, "POST", ts.URL+"/v1/sessions/slow/analyze", nil)
					}()
				}
				t.Cleanup(wg.Wait)
				waitFor(t, func() bool {
					running, queued := s.gate.snapshot()
					return running == 1 && queued == 1
				})
				return do(t, "POST", ts.URL+"/v1/sessions/slow/analyze", nil)
			},
		},
		{
			name: "memory budget", wantStatus: http.StatusServiceUnavailable, wantKind: "budget",
			fire: func(t *testing.T) (*http.Response, []byte) {
				_, ts := newTestServer(t, Config{MemBudget: 1})
				return do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "a", 4, SessionOptions{}))
			},
		},
		{
			name: "draining", wantStatus: http.StatusServiceUnavailable, wantKind: "draining",
			fire: func(t *testing.T) (*http.Response, []byte) {
				s, ts := newTestServer(t, Config{})
				s.Drain(time.Second)
				return do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "a", 4, SessionOptions{}))
			},
		},
		{
			name: "breaker open", wantStatus: http.StatusServiceUnavailable, wantKind: "breaker_open",
			fire: func(t *testing.T) (*http.Response, []byte) {
				_, ts := newTestServer(t, Config{BreakerTrips: 1})
				// Fail-soft degrades one net per run; a single degraded
				// result trips the one-strike breaker.
				createSession(t, ts.URL, "flaky", SessionOptions{InjectFault: "panic:b1"})
				resp, data := do(t, "POST", ts.URL+"/v1/sessions/flaky/analyze", nil)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("degraded analyze: %d: %s", resp.StatusCode, data)
				}
				return do(t, "POST", ts.URL+"/v1/sessions/flaky/analyze", nil)
			},
		},
		{
			name: "session cap with all sessions busy", wantStatus: http.StatusServiceUnavailable, wantKind: "session_limit",
			fire: func(t *testing.T) (*http.Response, []byte) {
				s, ts := newTestServer(t, Config{MaxSessions: 1, MaxConcurrent: 2, QueueDepth: 4})
				createSession(t, ts.URL, "slow", SessionOptions{InjectFault: "sleep:*"})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					do(t, "POST", ts.URL+"/v1/sessions/slow/analyze", nil)
				}()
				t.Cleanup(wg.Wait)
				waitFor(t, func() bool {
					s.mu.Lock()
					defer s.mu.Unlock()
					ss := s.sessions["slow"]
					return ss != nil && ss.refs > 0
				})
				return do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "b", 4, SessionOptions{}))
			},
		},
		{
			name: "storage failure", wantStatus: http.StatusServiceUnavailable, wantKind: "storage",
			fire: func(t *testing.T) (*http.Response, []byte) {
				_, ts := newTestServer(t, Config{DataDir: t.TempDir(), StoreFaultSpec: "enospc:append:1"})
				return do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "a", 4, SessionOptions{}))
			},
		},
		{
			name: "job queue full", wantStatus: http.StatusTooManyRequests, wantKind: "overloaded",
			fire: func(t *testing.T) (*http.Response, []byte) {
				s, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 1})
				createSession(t, ts.URL, "slow", SessionOptions{InjectFault: "sleep:*"})
				submit := map[string]string{"session": "slow", "type": "analyze"}
				for i := 0; i < 2; i++ {
					resp, data := do(t, "POST", ts.URL+"/v1/jobs", submit)
					if resp.StatusCode != http.StatusAccepted {
						t.Fatalf("submit %d: %d: %s", i, resp.StatusCode, data)
					}
				}
				waitFor(t, func() bool {
					jm := s.jobs.MetricsSnapshot()
					return jm.Running == 1 && jm.Queued == 1
				})
				return do(t, "POST", ts.URL+"/v1/jobs", submit)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := tc.fire(t)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.wantStatus, data)
			}
			wantErrKind(t, data, tc.wantKind)
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs <= 0 {
				t.Fatalf("Retry-After = %q, want positive integer seconds", ra)
			}
		})
	}
}

// TestJobsStateFilter covers GET /v1/jobs?state=: valid states filter,
// states with no members return empty lists, and an unknown state is a
// 400 — the snad jobs -state flag rides on this.
func TestJobsStateFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "bus", SessionOptions{})
	// One job that completes, one against a missing session that fails.
	for _, sess := range []string{"bus", "ghost"} {
		resp, data := do(t, "POST", ts.URL+"/v1/jobs", map[string]string{"session": sess, "type": "analyze"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d: %s", sess, resp.StatusCode, data)
		}
	}
	listState := func(state string) int {
		_, data := do(t, "GET", ts.URL+"/v1/jobs?state="+state, nil)
		var out JobsResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("state=%s: %v: %s", state, err, data)
		}
		for _, j := range out.Jobs {
			if state != "quarantined" && j.State != state {
				t.Fatalf("state=%s returned job in state %s", state, j.State)
			}
		}
		return len(out.Jobs)
	}
	waitFor(t, func() bool {
		return listState("done") == 1 && listState("failed") == 1
	})
	for state, want := range map[string]int{"done": 1, "failed": 1, "queued": 0, "running": 0, "canceled": 0, "quarantined": 0} {
		if got := listState(state); got != want {
			t.Fatalf("state=%s returned %d jobs, want %d", state, got, want)
		}
	}

	resp, data := do(t, "GET", ts.URL+"/v1/jobs?state=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state: %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "bad_request")
}
