package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/units"
)

// analyzeOK runs an analyze (or reanalyze) and decodes the response.
func analyzeOK(t *testing.T, base, name, endpoint string, body any) AnalyzeResponse {
	t.Helper()
	resp, data := do(t, "POST", base+"/v1/sessions/"+name+"/"+endpoint, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d: %s", endpoint, name, resp.StatusCode, data)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

// TestServerRestartRestoresSessions is the tentpole acceptance test at
// the handler level: sessions created and padded before a restart are
// served identically after it — same names, same analysis results, same
// cumulative padding.
func TestServerRestartRestoresSessions(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir})
	createSession(t, ts.URL, "alpha", SessionOptions{})
	createSession(t, ts.URL, "beta", SessionOptions{})
	before := analyzeOK(t, ts.URL, "alpha", "analyze", nil)
	padded := analyzeOK(t, ts.URL, "alpha", "reanalyze",
		ReanalyzeRequest{Padding: map[string]float64{"b1": 5 * units.Pico}})
	if padded.ChangedNets == 0 {
		t.Fatal("padding changed nothing; the survival check below would be vacuous")
	}
	ts.Close()

	// "Restart": a fresh server over the same directory. (The SIGKILL
	// variant, with no orderly close at all, lives in cmd/snad's e2e.)
	_, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, data := do(t, "GET", ts2.URL+"/v1/sessions", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list []SessionInfo
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "beta" {
		t.Fatalf("list = %+v", list)
	}
	for _, info := range list {
		if !info.Persisted || !info.Restored || info.RecoveredAt == "" {
			t.Fatalf("restored session info = %+v", info)
		}
	}

	// The report cache is warm state: gone, with an explanation.
	resp, data = do(t, "GET", ts2.URL+"/v1/sessions/alpha/report", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("report after restart: %d", resp.StatusCode)
	}
	ei := wantErrKind(t, data, "not_found")
	if ei.Message == "no session \"alpha\"" {
		t.Fatalf("restored session reported as nonexistent: %q", ei.Message)
	}

	// Replaying the same padding changes nothing — the cumulative padding
	// survived the restart and re-seeded the engine.
	replayed := analyzeOK(t, ts2.URL, "alpha", "reanalyze",
		ReanalyzeRequest{Padding: map[string]float64{"b1": 5 * units.Pico}})
	if replayed.ChangedNets != 0 {
		t.Fatalf("padding did not survive the restart: %d nets changed on replay", replayed.ChangedNets)
	}
	// Iteration count is a property of the computation path (the warm
	// incremental pass converges faster than the rebuilt engine's full
	// fixpoint), not of the result; normalize it before comparing.
	padded.Noise.Stats.Iterations = 0
	replayed.Noise.Stats.Iterations = 0
	wantJSON, _ := json.Marshal(padded.Noise)
	gotJSON, _ := json.Marshal(replayed.Noise)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("restored session's analysis differs from the pre-restart result\nwant: %s\ngot:  %s", wantJSON, gotJSON)
	}
	if before.Noise.Stats.Victims != replayed.Noise.Stats.Victims {
		t.Fatalf("victims %d -> %d across restart", before.Noise.Stats.Victims, replayed.Noise.Stats.Victims)
	}
}

// TestServerCreateJournaledBefore201: a create whose journal append fails
// is refused with a retryable 503 and leaves no trace — not in memory,
// not on disk, not after a restart.
func TestServerCreateJournaledBefore201(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir, StoreFaultSpec: "torn:append:1"})
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "doomed", 4, SessionOptions{}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unjournaled create: status %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "storage")
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("storage failure without a Retry-After hint")
	}
	resp, _ = do(t, "GET", ts.URL+"/v1/sessions/doomed", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("refused create still visible: %d", resp.StatusCode)
	}
	// The fault was one-shot: a retry of the same create succeeds.
	createSession(t, ts.URL, "doomed", SessionOptions{})
	ts.Close()

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, _ = do(t, "GET", ts2.URL+"/v1/sessions/doomed", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acknowledged create lost across restart: %d", resp.StatusCode)
	}
}

// TestServerDeleteJournaledBefore204 is the satellite regression test: a
// DELETE whose tombstone cannot be journaled is refused, the session
// stays fully served, and only a journaled delete survives a restart.
func TestServerDeleteJournaledBefore204(t *testing.T) {
	dir := t.TempDir()
	// Append #1 is the create; #2 the delete's tombstone.
	_, ts := newTestServer(t, Config{DataDir: dir, StoreFaultSpec: "torn:append:2"})
	createSession(t, ts.URL, "keep", SessionOptions{})

	resp, data := do(t, "DELETE", ts.URL+"/v1/sessions/keep", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unjournaled delete: status %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "storage")
	// The refused delete left the session fully alive.
	resp, _ = do(t, "GET", ts.URL+"/v1/sessions/keep", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session gone after refused delete: %d", resp.StatusCode)
	}
	analyzeOK(t, ts.URL, "keep", "analyze", nil)

	// Retrying the delete succeeds (the fault was one-shot)...
	resp, _ = do(t, "DELETE", ts.URL+"/v1/sessions/keep", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("retried delete: %d", resp.StatusCode)
	}
	ts.Close()

	// ...and the tombstone holds across the restart.
	_, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, _ = do(t, "GET", ts2.URL+"/v1/sessions/keep", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session resurrected: %d", resp.StatusCode)
	}
}

// TestServerEvictedSessionRematerializes is the satellite eviction test:
// LRU-evicting a persisted session only unloads it; the next request
// transparently reloads it from disk with its padding intact.
func TestServerEvictedSessionRematerializes(t *testing.T) {
	dir := t.TempDir()
	clock := newTestClock()
	cfg := Config{DataDir: dir, MaxSessions: 1, now: clock.now}
	_, ts := newTestServer(t, cfg)
	createSession(t, ts.URL, "first", SessionOptions{})
	padded := analyzeOK(t, ts.URL, "first", "reanalyze",
		ReanalyzeRequest{Padding: map[string]float64{"b1": 5 * units.Pico}})
	if padded.ChangedNets == 0 {
		t.Fatal("padding changed nothing")
	}

	// Creating "second" evicts "first" from memory — but not from disk.
	createSession(t, ts.URL, "second", SessionOptions{})
	resp, data := do(t, "GET", ts.URL+"/v1/sessions", nil)
	var list []SessionInfo
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list after eviction = %+v", list)
	}
	for _, info := range list {
		if info.Name == "first" && info.Loaded {
			t.Fatalf("evicted session still loaded: %+v", info)
		}
	}

	// GET transparently re-materializes it (evicting "second" in turn),
	// with the padding state intact.
	resp, data = do(t, "GET", ts.URL+"/v1/sessions/first", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted session GET: %d: %s", resp.StatusCode, data)
	}
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || !info.Restored {
		t.Fatalf("re-materialized info = %+v", info)
	}
	replayed := analyzeOK(t, ts.URL, "first", "reanalyze",
		ReanalyzeRequest{Padding: map[string]float64{"b1": 5 * units.Pico}})
	if replayed.ChangedNets != 0 {
		t.Fatalf("padding lost across eviction: %d nets changed on replay", replayed.ChangedNets)
	}

	// The evicted name is still taken.
	resp, data = do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "second", 4, SessionOptions{}))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("recreate of evicted persisted session: %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "conflict")
}

// TestServerRecoveryEndpoint pins /v1/recovery: 404 memory-only, and the
// structured boot report — restored names, quarantine entries — when
// durable.
func TestServerRecoveryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := do(t, "GET", ts.URL+"/v1/recovery", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("memory-only recovery: %d", resp.StatusCode)
	}
	wantErrKind(t, data, "not_found")

	dir := t.TempDir()
	_, ts2 := newTestServer(t, Config{DataDir: dir})
	createSession(t, ts2.URL, "bus", SessionOptions{})
	ts2.Close()

	_, ts3 := newTestServer(t, Config{DataDir: dir})
	resp, data = do(t, "GET", ts3.URL+"/v1/recovery", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery: %d: %s", resp.StatusCode, data)
	}
	var rec report.RecoveryJSON
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Restored) != 1 || rec.Restored[0] != "bus" || !rec.Compacted || rec.RecoveredAt == "" {
		t.Fatalf("recovery = %+v", rec)
	}
}

// TestServerUnreplayableSpecQuarantined: a persisted spec whose sources
// no longer build (CRC-valid bytes, broken content) is quarantined at
// boot with a tombstone — the server still comes up, the healthy session
// still serves, and the next boot is clean.
func TestServerUnreplayableSpecQuarantined(t *testing.T) {
	dir := t.TempDir()
	// Seed the store directly: the store journals payloads verbatim, so a
	// create whose netlist no longer parses models on-disk format skew.
	st, _, err := OpenStore(dir, nil, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Create(&CreateSessionRequest{Name: "skewed", Netlist: "not a netlist\n"}); err != nil {
		t.Fatal(err)
	}
	good := busPayload(t, "good", 4, SessionOptions{})
	if err := st.Create(&good); err != nil {
		t.Fatal(err)
	}
	st.Close()

	_, ts := newTestServer(t, Config{DataDir: dir})
	resp, _ := do(t, "GET", ts.URL+"/v1/sessions/good", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy session did not survive its neighbor's rot: %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", ts.URL+"/v1/sessions/skewed", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unreplayable session still served: %d", resp.StatusCode)
	}
	resp, data := do(t, "GET", ts.URL+"/v1/recovery", nil)
	var rec report.RecoveryJSON
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range rec.Quarantined {
		if q.Session == "skewed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quarantine entry for the unreplayable spec: %+v", rec.Quarantined)
	}
	for _, name := range rec.Restored {
		if name == "skewed" {
			t.Fatal("quarantined session listed as restored")
		}
	}
	ts.Close()

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, data = do(t, "GET", ts2.URL+"/v1/recovery", nil)
	var rec2 report.RecoveryJSON
	if err := json.Unmarshal(data, &rec2); err != nil {
		t.Fatal(err)
	}
	if len(rec2.Quarantined) != 0 {
		t.Fatalf("quarantined spec resurfaced on the next boot: %+v", rec2.Quarantined)
	}
}

// TestServerBootBeyondSessionCap: persisted sessions past MaxSessions
// stay on disk at boot and reload lazily.
func TestServerBootBeyondSessionCap(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir})
	for _, name := range []string{"s1", "s2", "s3"} {
		createSession(t, ts.URL, name, SessionOptions{})
	}
	ts.Close()

	clock := newTestClock()
	_, ts2 := newTestServer(t, Config{DataDir: dir, MaxSessions: 2, now: clock.now})
	resp, data := do(t, "GET", ts2.URL+"/v1/sessions", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list []SessionInfo
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list = %+v", list)
	}
	unloaded := 0
	for _, info := range list {
		if !info.Loaded {
			unloaded++
		}
	}
	if unloaded != 1 {
		t.Fatalf("%d sessions unloaded at boot, want 1 (%+v)", unloaded, list)
	}
	// Every one of them serves, loaded or not.
	for _, name := range []string{"s1", "s2", "s3"} {
		analyzeOK(t, ts2.URL, name, "analyze", nil)
	}
}

// TestServerStorageDegradedSurfaced: a storage failure flips the readyz
// diagnostic without killing the server.
func TestServerStorageDegradedSurfaced(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir, StoreFaultSpec: "enospc:append:1"})
	ready := func() ReadyResponse {
		resp, data := do(t, "GET", ts.URL+"/readyz", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz: %d", resp.StatusCode)
		}
		var rr ReadyResponse
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	if rr := ready(); !rr.Durable || rr.StorageDegraded {
		t.Fatalf("fresh readyz = %+v", rr)
	}
	resp, _ := do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "x", 4, SessionOptions{}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create under enospc: %d", resp.StatusCode)
	}
	if rr := ready(); !rr.StorageDegraded {
		t.Fatalf("storage failure not surfaced: %+v", rr)
	}
}

// testClock hands out strictly increasing times under a lock so LRU
// ordering is deterministic even with concurrent requests.
type testClock struct {
	mu   sync.Mutex
	base time.Time
	n    int64
}

func newTestClock() *testClock { return &testClock{base: time.Now()} }

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.base.Add(time.Duration(c.n) * time.Second)
}
