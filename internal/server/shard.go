package server

// Distributed analysis support, both directions:
//
//   - snad as worker: /v1/shard/{op} hosts shard engines behind the
//     shard.Runner protocol. Engines are keyed by (run token, shard) and
//     built from the design spec shipped in the init request, so a worker
//     needs no prior session state — a coordinator can aim at any idle
//     snad process.
//
//   - snad as coordinator: registered workers (/v1/workers) are probed by
//     a heartbeat, and POST /v1/sessions/{name}/iterate fans the joint
//     noise–delay fixpoint out across the healthy ones via shard.Run. A
//     healthy distributed run returns noise and delay sections
//     byte-identical to the single-process path; worker loss degrades to
//     re-hosting, then to conservative full-rail results with degradation
//     diagnostics — never to a failed request. With a data directory, the
//     coordinator checkpoints round state so a restarted server resumes a
//     mid-fixpoint iterate instead of starting over.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/shard"
	"repro/internal/sta"
)

// workerEntry is one registered shard worker and its heartbeat state.
// info is guarded by the server's workerMu; w is immutable after
// registration.
type workerEntry struct {
	info WorkerInfo
	w    shard.Worker
}

// RegisterWorker adds (or replaces) a shard worker. It is the programmatic
// form of POST /v1/workers, used by cmd/snad to register the -workers
// flag's static fleet at boot.
func (s *Server) RegisterWorker(name, url string) (WorkerInfo, error) {
	if s.cfg.WorkerDialer == nil {
		return WorkerInfo{}, fmt.Errorf("server has no worker dialer; distributed analysis is disabled")
	}
	if url == "" {
		return WorkerInfo{}, fmt.Errorf("worker url is required")
	}
	if name == "" {
		name = url
	}
	entry := &workerEntry{
		info: WorkerInfo{Name: name, URL: url, Healthy: true},
		w:    s.cfg.WorkerDialer(name, url),
	}
	s.workerMu.Lock()
	s.workers[name] = entry
	s.workerMu.Unlock()
	s.hbOnce.Do(func() { go s.heartbeatLoop() })
	s.cfg.Logf("worker %q registered at %s", name, url)
	return entry.info, nil
}

// heartbeatLoop probes every registered worker each interval. A failed
// probe marks the worker unhealthy (iterate skips it); a later success
// revives it — transient network trouble must not permanently shrink the
// fleet.
func (s *Server) heartbeatLoop() {
	ticker := time.NewTicker(s.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.hbStop:
			return
		case <-ticker.C:
		}
		for _, e := range s.workerSnapshot() {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.HeartbeatEvery)
			err := e.w.Ping(ctx)
			cancel()
			was := s.recordProbe(e, err)
			if was && err != nil {
				s.cfg.Logf("worker %q failed heartbeat: %v", e.info.Name, err)
			} else if !was && err == nil {
				s.cfg.Logf("worker %q recovered", e.info.Name)
			}
		}
	}
}

// workerSnapshot copies the registered fleet in name order (probe order is
// observable through log lines and LastSeenAt skew; keep it deterministic).
func (s *Server) workerSnapshot() []*workerEntry {
	s.workerMu.Lock()
	defer s.workerMu.Unlock()
	names := make([]string, 0, len(s.workers))
	for name := range s.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*workerEntry, len(names))
	for i, name := range names {
		entries[i] = s.workers[name]
	}
	return entries
}

// recordProbe folds one heartbeat outcome into the worker's health state,
// reporting the previous health so the caller can log transitions.
func (s *Server) recordProbe(e *workerEntry, err error) (was bool) {
	s.workerMu.Lock()
	defer s.workerMu.Unlock()
	was = e.info.Healthy
	e.info.Healthy = err == nil
	if err == nil {
		e.info.LastSeenAt = s.cfg.now().UTC().Format(time.RFC3339Nano)
	}
	return was
}

func (s *Server) stopHeartbeat() {
	// hbOnce also guards the stop: closing hbStop before any registration
	// must not panic a later (impossible post-Close, but cheap to harden)
	// loop start.
	s.hbOnce.Do(func() {})
	select {
	case <-s.hbStop:
	default:
		close(s.hbStop)
	}
}

// healthyWorkers snapshots the live fleet in name order — deterministic
// ordering feeds the partitioner's deterministic shard→worker mapping.
func (s *Server) healthyWorkers() []shard.Worker {
	s.workerMu.Lock()
	defer s.workerMu.Unlock()
	names := make([]string, 0, len(s.workers))
	for name, e := range s.workers {
		if e.info.Healthy {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]shard.Worker, len(names))
	for i, name := range names {
		out[i] = s.workers[name].w
	}
	return out
}

func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req RegisterWorkerRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	info, err := s.RegisterWorker(req.Name, req.URL)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	s.writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	entries := s.workerSnapshot()
	infos := make([]WorkerInfo, len(entries))
	s.workerMu.Lock()
	for i, e := range entries {
		infos[i] = e.info
	}
	s.workerMu.Unlock()
	s.writeJSON(w, http.StatusOK, infos)
}

// --- snad as worker: hosted shard runners ---

func runnerKey(token string, shardID int) string {
	return fmt.Sprintf("%s/%d", token, shardID)
}

// runnerFor looks up a hosted shard runner.
func (s *Server) runnerFor(token string, shardID int) *shard.Runner {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	return s.shardRunners[runnerKey(token, shardID)]
}

// installRunner publishes a freshly initialized shard engine, closing any
// previous engine registered under the same (token, shard) — a re-init
// after a coordinator retry must not leak the replaced engine.
func (s *Server) installRunner(token string, shardID int, r *shard.Runner) {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	key := runnerKey(token, shardID)
	if old := s.shardRunners[key]; old != nil {
		old.Close()
	}
	s.shardRunners[key] = r
}

// dropRunners closes one hosted shard engine, or — shardID < 0 — every
// engine of the run token (coordinator teardown).
func (s *Server) dropRunners(token string, shardID int) {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	prefix := token + "/"
	if shardID < 0 {
		for key, runner := range s.shardRunners {
			if strings.HasPrefix(key, prefix) {
				runner.Close()
				delete(s.shardRunners, key)
			}
		}
		s.dropTokenDesignLocked(token)
		return
	}
	key := runnerKey(token, shardID)
	if runner := s.shardRunners[key]; runner != nil {
		runner.Close()
		delete(s.shardRunners, key)
	}
	// Drop the token's shared design with its last engine.
	for key := range s.shardRunners {
		if strings.HasPrefix(key, prefix) {
			return
		}
	}
	s.dropTokenDesignLocked(token)
}

// dropTokenDesignLocked releases a token's design-cache reference along
// with its shardDesigns slot. Callers hold shardMu; the cache mutex is
// a leaf, so taking it under shardMu is within the lock order.
func (s *Server) dropTokenDesignLocked(token string) {
	if e := s.shardDesigns[token]; e != nil {
		s.cache.release(e.entry)
		delete(s.shardDesigns, token)
	}
}

// closeShardRunners drops every hosted shard engine (server shutdown).
func (s *Server) closeShardRunners() {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	for key, r := range s.shardRunners {
		r.Close()
		delete(s.shardRunners, key)
	}
	for token := range s.shardDesigns {
		s.dropTokenDesignLocked(token)
	}
}

// sharedDesign is one run token's referenced design-cache entry, shared
// by every shard engine the token hosts on this worker. A bound design
// is immutable after binding (levelization and RC-analysis caches are
// internally guarded), so sharing it is safe; everything mutable —
// timing annotation, padding, noise state — is private to each engine.
// The token holds one cache reference, released when its last engine
// drops (dropRunners/closeShardRunners).
type sharedDesign struct {
	entry *designEntry
	opts  core.Options
}

// budgetShedError carries a design-cache budget shed through the shard
// runner's error classification. The runner wraps builder failures in
// FatalError (deterministic errors recur on any worker), but a budget
// shed is load, not determinism — errors.As finds this through the
// FatalError unwrap chain and writeShardErr maps it back to a 503 the
// coordinator treats as a transient worker loss.
type budgetShedError struct{ einfo *ErrorInfo }

func (e *budgetShedError) Error() string { return e.einfo.Message }

// designForToken returns the run token's shared design, building it
// through the content-addressed design cache on the token's first init.
// A coordinator driving a session and the workers hosting its shards
// thus share one bound design per process, and two runs over the same
// sources share one design across tokens. Racing first inits coalesce
// in the cache's single-flight build; the install race's loser releases
// its duplicate reference. Build failures are not cached: they are
// deterministic, and a retried init simply fails the same way.
func (s *Server) designForToken(ctx context.Context, token string, spec *shard.DesignSpec) (*bind.Design, core.Options, error) {
	s.shardMu.Lock()
	e := s.shardDesigns[token]
	s.shardMu.Unlock()
	if e != nil {
		return e.entry.b, e.opts, nil
	}
	var zero core.Options
	opts, inputs, err := specOpts(spec)
	if err != nil {
		return nil, zero, err
	}
	src := designSources{
		Netlist: spec.Netlist,
		Verilog: spec.Verilog,
		SPEF:    spec.SPEF,
		Liberty: spec.Liberty,
		Timing:  spec.Timing,
	}
	//snavet:deferrelease the entry reference is handed to the run token's sharedDesign (released on token drop) or released explicitly on the lost race below; acquire failure returns a nil entry
	entry, einfo := s.cache.acquire(ctx, src, func() (*bind.Design, *ErrorInfo) {
		return buildDesign(src, inputs)
	})
	if einfo != nil {
		if einfo.Kind == "budget" {
			return nil, zero, &budgetShedError{einfo: einfo}
		}
		return nil, zero, fmt.Errorf("%s", einfo.Message)
	}
	s.shardMu.Lock()
	if prev := s.shardDesigns[token]; prev != nil {
		s.shardMu.Unlock()
		s.cache.release(entry)
		return prev.entry.b, prev.opts, nil
	}
	s.shardDesigns[token] = &sharedDesign{entry: entry, opts: opts}
	s.shardMu.Unlock()
	return entry.b, opts, nil
}

// specOpts derives the engine options (and the parsed input timing they
// embed) from a shipped design spec. The design itself builds through
// the shared cache — including lint, which the coordinator's session
// already passed; re-running it on a cache miss is cheap defensive
// hardening, not a behavior change.
func specOpts(spec *shard.DesignSpec) (core.Options, map[string]*sta.Timing, error) {
	var zero core.Options
	if (spec.Netlist == "") == (spec.Verilog == "") {
		return zero, nil, fmt.Errorf("design spec needs exactly one of netlist or verilog")
	}
	mode, err := parseMode(spec.Options.Mode)
	if err != nil {
		return zero, nil, err
	}
	var inputs map[string]*sta.Timing
	if spec.Timing != "" {
		if inputs, err = sta.ParseInputTiming(strings.NewReader(spec.Timing)); err != nil {
			return zero, nil, err
		}
	}
	return core.Options{
		Mode:             mode,
		FilterThreshold:  spec.Options.Threshold,
		NoPropagation:    spec.Options.NoPropagation,
		LogicCorrelation: spec.Options.LogicCorrelation,
		Workers:          spec.Options.Workers,
		FailSoft:         !spec.Options.FailFast,
		MaxIter:          spec.Options.MaxIter,
		STA:              sta.Options{InputTiming: inputs},
	}, inputs, nil
}

// designSpecOf converts a session's retained create request into the wire
// spec shipped to remote workers. Runtime fault injection deliberately
// stays local: it chaos-tests one process, not the fleet.
func designSpecOf(req *CreateSessionRequest) *shard.DesignSpec {
	return &shard.DesignSpec{
		Netlist: req.Netlist,
		Verilog: req.Verilog,
		SPEF:    req.SPEF,
		Liberty: req.Liberty,
		Timing:  req.Timing,
		Options: shard.OptionsSpec{
			Mode:             req.Options.Mode,
			Threshold:        req.Options.Threshold,
			NoPropagation:    req.Options.NoPropagation,
			LogicCorrelation: req.Options.LogicCorrelation,
			Workers:          req.Options.Workers,
			FailFast:         req.Options.FailFast,
		},
	}
}

// writeShardErr maps a runner error onto the wire so the coordinator's
// client can reconstruct the shard error taxonomy: shard_broken asks for
// a re-init of the same engine, shard_fatal would recur anywhere and
// aborts the run, deadline/canceled are transient.
func (s *Server) writeShardErr(w http.ResponseWriter, err error) {
	var fe *shard.FatalError
	var be *budgetShedError
	switch {
	case errors.As(err, &be):
		// Before the FatalError case: the runner wraps builder errors as
		// fatal, but a memory-budget shed is transient worker load.
		s.writeErr(w, http.StatusServiceUnavailable, *be.einfo, s.cfg.RetryAfter)
	case errors.Is(err, shard.ErrEngineBroken):
		s.writeErr(w, http.StatusConflict, ErrorInfo{Kind: "shard_broken", Message: err.Error()}, 0)
	case errors.As(err, &fe):
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "shard_fatal", Message: err.Error()}, 0)
	case errors.Is(err, context.DeadlineExceeded):
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{Kind: "deadline", Message: err.Error()}, s.cfg.RetryAfter)
	case errors.Is(err, context.Canceled):
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{Kind: "canceled", Message: err.Error()}, 0)
	default:
		s.writeErr(w, http.StatusInternalServerError, ErrorInfo{Kind: "engine", Message: err.Error()}, 0)
	}
}

// handleShardOp executes one coordinator dispatch against a hosted shard
// engine. Ops pass through the same bounded admission as analyses — a
// worker past its concurrency budget sheds coordinator dispatches with
// 429, and the coordinator's retry/re-host machinery absorbs it.
func (s *Server) handleShardOp(w http.ResponseWriter, r *http.Request) {
	op := r.PathValue("op")
	if op == shard.OpPing {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	defer cancel()

	badBody := func(err error) {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
	}
	switch op {
	case shard.OpInit:
		var req shard.InitRequest
		if err := decodeBody(r.Body, &req); err != nil {
			badBody(err)
			return
		}
		if req.Design == nil {
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{
				Kind: "shard_fatal", Message: "init without a design spec (remote workers build their own engines)",
			}, 0)
			return
		}
		spec, token := req.Design, req.Token
		runner := shard.NewRunner(func(ctx context.Context, owned []string, padding map[string]float64) (*core.ShardEngine, error) {
			b, opts, err := s.designForToken(ctx, token, spec)
			if err != nil {
				return nil, err
			}
			return core.NewShardEngine(ctx, b, opts, owned, padding)
		})
		if err := runner.Init(ctx, &req); err != nil {
			s.writeShardErr(w, err)
			return
		}
		s.installRunner(req.Token, req.Shard, runner)
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case shard.OpEval:
		var req shard.EvalRequest
		if err := decodeBody(r.Body, &req); err != nil {
			badBody(err)
			return
		}
		runner := s.runnerFor(req.Token, req.Shard)
		if runner == nil {
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{
				Kind: "shard_fatal", Message: fmt.Sprintf("eval on uninitialized shard %s/%d", req.Token, req.Shard),
			}, 0)
			return
		}
		resp, err := runner.Eval(ctx, &req)
		if err != nil {
			s.writeShardErr(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
	case shard.OpRound:
		var req shard.RoundRequest
		if err := decodeBody(r.Body, &req); err != nil {
			badBody(err)
			return
		}
		runner := s.runnerFor(req.Token, req.Shard)
		if runner == nil {
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{
				Kind: "shard_fatal", Message: fmt.Sprintf("round on uninitialized shard %s/%d", req.Token, req.Shard),
			}, 0)
			return
		}
		if err := runner.Round(ctx, &req); err != nil {
			s.writeShardErr(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case shard.OpDelay:
		var req shard.DelayRequest
		if err := decodeBody(r.Body, &req); err != nil {
			badBody(err)
			return
		}
		runner := s.runnerFor(req.Token, req.Shard)
		if runner == nil {
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{
				Kind: "shard_fatal", Message: fmt.Sprintf("delay on uninitialized shard %s/%d", req.Token, req.Shard),
			}, 0)
			return
		}
		resp, err := runner.Delay(ctx, &req)
		if err != nil {
			s.writeShardErr(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
	case shard.OpCollect:
		var req shard.CollectRequest
		if err := decodeBody(r.Body, &req); err != nil {
			badBody(err)
			return
		}
		runner := s.runnerFor(req.Token, req.Shard)
		if runner == nil {
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{
				Kind: "shard_fatal", Message: fmt.Sprintf("collect on uninitialized shard %s/%d", req.Token, req.Shard),
			}, 0)
			return
		}
		resp, err := runner.Collect(ctx, &req)
		if err != nil {
			s.writeShardErr(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
	case shard.OpClose:
		var req shard.CloseRequest
		if err := decodeBody(r.Body, &req); err != nil {
			badBody(err)
			return
		}
		s.dropRunners(req.Token, req.Shard)
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		s.writeErr(w, http.StatusNotFound, ErrorInfo{
			Kind: "bad_request", Message: fmt.Sprintf("unknown shard op %q", op),
		}, 0)
	}
}

// --- snad as coordinator: the iterate endpoint ---

func (s *Server) handleIterate(w http.ResponseWriter, r *http.Request) {
	var req IterateRequest
	if err := decodeBodyOptional(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	s.analysis(w, r, func(ctx context.Context, ss *session) (*AnalyzeResponse, error) {
		workers := s.healthyWorkers()
		if !req.Local && len(workers) > 0 && ss.spec != nil {
			return s.iterateDistributed(ctx, ss, &req, workers)
		}
		return s.iterateLocal(ctx, ss, &req)
	})
}

func (s *Server) iterateLocal(ctx context.Context, ss *session, req *IterateRequest) (*AnalyzeResponse, error) {
	out, err := core.AnalyzeIterativeCtx(ctx, ss.b, ss.opts, req.MaxRounds)
	if err != nil {
		return nil, err
	}
	resp := &AnalyzeResponse{
		Session: ss.name,
		Noise:   report.BuildJSON(out.Noise),
		Iterate: &IterateInfo{
			Rounds:        out.Rounds,
			Converged:     out.Converged,
			Diverging:     out.Diverging,
			DivergeReason: out.DivergeReason,
		},
	}
	if req.Delay {
		resp.Delay = report.BuildDelayJSON(out.Delay)
	}
	return resp, nil
}

func (s *Server) iterateDistributed(ctx context.Context, ss *session, req *IterateRequest, workers []shard.Worker) (*AnalyzeResponse, error) {
	shards := req.Shards
	if shards <= 0 {
		shards = s.cfg.Shards
	}
	if shards <= 0 {
		shards = len(workers)
	}
	cfg := shard.Config{
		B:         ss.b,
		Opts:      ss.opts,
		Workers:   workers,
		Shards:    shards,
		Token:     "iterate-" + ss.name,
		Design:    designSpecOf(ss.spec),
		MaxRounds: req.MaxRounds,
		// Each dispatch gets the same ceiling a worker enforces on its own
		// requests; a hung worker is declared lost instead of pinning the
		// run forever.
		DispatchTimeout: s.cfg.MaxRequestTimeout,
		Logf:            s.cfg.Logf,
	}
	if s.store != nil {
		// Round state persists next to the session journal: a coordinator
		// restart resumes a mid-fixpoint iterate from its last completed
		// round instead of redoing the run.
		cfg.Checkpointer = &shard.FileCheckpointer{Dir: filepath.Join(s.cfg.DataDir, "iterate")}
	}
	out, err := shard.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	resp := &AnalyzeResponse{
		Session: ss.name,
		Noise:   report.BuildJSON(out.Noise),
		Iterate: &IterateInfo{
			Rounds:          out.Rounds,
			Converged:       out.Converged,
			Diverging:       out.Diverging,
			DivergeReason:   out.DivergeReason,
			Distributed:     true,
			Workers:         len(workers),
			Shards:          shards,
			Reassigns:       out.Reassigns,
			AbandonedShards: out.AbandonedShards,
			Resumed:         out.Resumed,
		},
	}
	if req.Delay {
		resp.Delay = report.BuildDelayJSON(out.Delay)
	}
	return resp, nil
}
