// Package server implements snad, the fail-soft static-noise-analysis
// service: an HTTP/JSON daemon that loads designs into named sessions
// (each wrapping core.Session, the persistent incremental analyzer) and
// serves analyze / delta-reanalyze / report queries.
//
// Robustness is the point, not a feature:
//
//   - Bounded admission: at most MaxConcurrent analyses run at once and at
//     most QueueDepth requests wait; overflow is shed immediately with
//     429 and a Retry-After hint, so a traffic spike degrades into fast
//     rejections instead of unbounded memory growth and timeouts.
//
//   - Per-request deadlines: the effective deadline is the tighter of the
//     client's ?timeout and the server's MaxRequestTimeout, propagated
//     into core.AnalyzeCtx's cooperative cancellation. No request can
//     hold a worker forever.
//
//   - Per-request panic isolation: a recover barrier converts a handler
//     panic into a structured 500 and marks the session suspect; other
//     requests and other sessions are untouched. (Per-victim panics never
//     even reach it — the engine's own fail-soft isolation degrades the
//     victim and reports a diagnostic.)
//
//   - A degradation-aware circuit breaker per session: consecutive
//     engine-degraded results trip the session to 503 for a cooldown, so
//     a poisoned design stops burning worker time while healthy sessions
//     keep serving.
//
//   - Graceful drain: Drain stops admission (readyz flips to 503), lets
//     in-flight work finish within a budget, then cancels whatever is
//     left through the same context plumbing. The caller (cmd/snad) maps
//     a clean or forced drain onto the exit-code discipline.
//
//   - Durable sessions: with Config.DataDir set, session lifecycle events
//     (create, cumulative reanalyze padding, delete) are journaled —
//     fsynced and CRC-framed — before the response is acknowledged, and
//     boot replays the journal fail-soft: corrupt records are quarantined
//     with a reason, healthy sessions come back, and a SIGKILL at any
//     instant never prevents the next boot (store.go, recovery.go).
//     LRU-evicting a persisted session keeps it reloadable: a later
//     request transparently re-materializes it from its stored sources.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"path/filepath"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/liberty"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/shard"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
	"repro/internal/workload"
)

// Config tunes the service. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// MaxSessions caps the number of loaded sessions; creating one past
	// the cap evicts the least-recently-used idle session, and if every
	// session is busy the create is shed (default 8).
	MaxSessions int
	// MaxConcurrent caps simultaneously running analyses (default
	// GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth caps requests waiting for a worker slot; overflow is
	// shed with 429 (default 2×MaxConcurrent).
	QueueDepth int
	// MaxRequestTimeout is the server-side ceiling on one request's
	// analysis deadline; a client ?timeout tighter than this wins
	// (default 30s).
	MaxRequestTimeout time.Duration
	// RetryAfter is the hint attached to 429 shed responses (default 1s).
	RetryAfter time.Duration
	// BreakerTrips is the number of consecutive engine-degraded results
	// that trip a session's circuit breaker (default 3).
	BreakerTrips int
	// BreakerCooldown is how long a tripped session sheds requests before
	// going half-open (default 10s).
	BreakerCooldown time.Duration
	// MemBudget is the server-wide byte budget for cached bound designs
	// (serve -mem-budget). Creating or re-materializing a session charges
	// the design's measured size against it; when idle-entry eviction
	// cannot make room the request sheds with 503 kind "budget" instead
	// of growing until the OOM killer arrives. 0 disables budgeting.
	MemBudget int64
	// TenantCap caps one tenant's simultaneously running interactive
	// analyses, so round-robin admission stays fair even against a tenant
	// that floods the queue (default MaxConcurrent — no per-tenant cap).
	TenantCap int
	// JobTenantCap caps one tenant's simultaneously running jobs in the
	// async worker pool (default JobWorkers — no per-tenant cap).
	JobTenantCap int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)

	// DataDir enables durable sessions: lifecycle events are journaled
	// here and replayed on boot. Empty runs memory-only (sessions die
	// with the process), the pre-persistence behavior.
	DataDir string
	// CompactEvery bounds journal growth: the store folds the journal
	// into snapshots after this many records (default 64).
	CompactEvery int
	// StoreFaultSpec injects faults into the store's write path (see
	// workload.ParseStoreFaults). It exists for chaos-testing the
	// recovery machinery; production leaves it empty. The same faults
	// apply to the job journal's write path.
	StoreFaultSpec string

	// JobWorkers sizes the async job worker pool — deliberately separate
	// from MaxConcurrent so queued batch work cannot starve interactive
	// requests (default 2).
	JobWorkers int
	// JobQueueDepth caps jobs waiting for a job worker; POST /v1/jobs
	// past it is shed with 429 (default 16).
	JobQueueDepth int
	// JobKeepDone bounds terminal-job retention for status queries
	// (default 64). High-throughput batch callers that poll for results
	// need retention deeper than their poll interval times the completion
	// rate, or a finished job can be pruned before its submitter sees it.
	JobKeepDone int
	// JobMaxAttempts is the default retry budget for jobs that don't set
	// their own (default 3).
	JobMaxAttempts int
	// JobDeadline is the default per-attempt execution budget for jobs
	// that don't set their own (default 5m — batch work gets more room
	// than MaxRequestTimeout gives an interactive request).
	JobDeadline time.Duration
	// JobFaultSpec injects faults into job execution attempts (see
	// workload.ParseJobFaults); chaos testing only.
	JobFaultSpec string

	// WorkerDialer builds a shard.Worker for a registered worker URL. It
	// is injected by cmd/snad (the client package implements it, and the
	// server cannot import the client); nil disables worker registration
	// and distributed iterate.
	WorkerDialer func(name, url string) shard.Worker
	// Shards is the default shard count for distributed iterate (0 = one
	// shard per healthy worker).
	Shards int
	// HeartbeatEvery is the worker health-probe interval (default 2s).
	HeartbeatEvery time.Duration

	// now is the clock, injectable for breaker tests.
	now func() time.Time
}

func (c *Config) fill() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.MaxRequestTimeout <= 0 {
		c.MaxRequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BreakerTrips <= 0 {
		c.BreakerTrips = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 16
	}
	if c.JobMaxAttempts <= 0 {
		c.JobMaxAttempts = 3
	}
	if c.JobDeadline <= 0 {
		c.JobDeadline = 5 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Server is the snad service state. Create one with New, serve
// Handler(), and call Drain on shutdown.
type Server struct {
	cfg Config

	// gate is the bounded, tenant-fair admission controller: at most
	// MaxConcurrent analyses run, at most QueueDepth wait, and waiters
	// are granted round-robin across tenants with a per-tenant running
	// cap (tenant.go).
	gate *admission

	// cache is the content-addressed shared design cache: sessions and
	// shard run tokens hold refcounted entries, and the optional byte
	// budget governs create/re-materialize admission (cache.go).
	cache *designCache

	// flightMu orders request entry against the drain flag so Drain's
	// WaitGroup wait cannot race a late arrival.
	flightMu  sync.Mutex
	draining  atomic.Bool
	inflight  sync.WaitGroup
	inflightN atomic.Int64
	shedN     atomic.Int64

	// Per-stage latency histograms served by GET /metrics.
	histAdmission *metrics.Histogram
	histAnalysis  *metrics.Histogram
	histFsync     *metrics.Histogram
	histJobRun    *metrics.Histogram

	// forceCtx is cancelled when a drain exceeds its budget; every
	// request context is derived to die with it.
	forceCtx    context.Context
	forceCancel context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*session
	lastUsed map[string]time.Time

	// store is the durable session store (nil when DataDir is empty);
	// recovery is the boot replay report /v1/recovery serves.
	store         *Store
	recovery      *report.RecoveryJSON
	storeDegraded atomic.Bool

	// jobs owns the durable async job queue and its worker pool.
	jobs *jobs.Manager

	// shardMu guards the shard runners this server hosts as a worker,
	// keyed "token/shard", and the per-run-token design cache shared by
	// the token's engines (a bound design is immutable after binding).
	shardMu      sync.Mutex
	shardRunners map[string]*shard.Runner
	shardDesigns map[string]*sharedDesign

	// workerMu guards the registered shard workers (this server as
	// coordinator); hbStop ends the heartbeat loop, started on the first
	// registration.
	workerMu sync.Mutex
	workers  map[string]*workerEntry
	hbOnce   sync.Once
	hbStop   chan struct{}

	handler http.Handler
}

// New builds a Server. It fails only when the configured data directory
// is structurally unusable (cannot be created, journal cannot be opened
// for append) — corrupt durable state never fails New; it is quarantined
// and reported through /v1/recovery instead.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:          cfg,
		gate:         newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.TenantCap),
		cache:        newDesignCache(cfg.MemBudget, cfg.now, cfg.Logf),
		sessions:     make(map[string]*session),
		lastUsed:     make(map[string]time.Time),
		shardRunners: make(map[string]*shard.Runner),
		shardDesigns: make(map[string]*sharedDesign),
		workers:      make(map[string]*workerEntry),
		hbStop:       make(chan struct{}),

		histAdmission: metrics.NewHistogram("snad_admission_wait_seconds", "Time requests spend waiting for a worker slot.", nil),
		histAnalysis:  metrics.NewHistogram("snad_analysis_seconds", "Engine time of completed analysis requests.", nil),
		histFsync:     metrics.NewHistogram("snad_journal_fsync_seconds", "Durable session-journal append latency (fsync included).", nil),
		histJobRun:    metrics.NewHistogram("snad_job_run_seconds", "Wall time of async job execution attempts.", nil),
	}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	faults, err := workload.ParseStoreFaults(cfg.StoreFaultSpec)
	if err != nil {
		return nil, err
	}
	var adapter *storeFaultAdapter
	if faults != nil {
		adapter = &storeFaultAdapter{
			BeforeWrite:  faults.BeforeWrite,
			BeforeSync:   faults.BeforeSync,
			BeforeRename: faults.BeforeRename,
		}
	}
	if cfg.DataDir != "" {
		st, rep, err := OpenStore(cfg.DataDir, adapter, cfg.CompactEvery, cfg.Logf)
		if err != nil {
			return nil, err
		}
		s.store, s.recovery = st, rep
		s.restoreSessions()
	}
	jobFaults, err := workload.ParseJobFaults(cfg.JobFaultSpec)
	if err != nil {
		return nil, err
	}
	jcfg := jobs.Config{
		Workers:            cfg.JobWorkers,
		MaxQueued:          cfg.JobQueueDepth,
		KeepDone:           cfg.JobKeepDone,
		TenantCap:          cfg.JobTenantCap,
		DefaultMaxAttempts: cfg.JobMaxAttempts,
		DefaultDeadline:    cfg.JobDeadline,
		Exec:               s.execJob,
		OnFinal:            s.jobFinal,
		Logf:               cfg.Logf,
	}
	if jobFaults != nil {
		jcfg.Fault = jobFaults.Fire
	}
	if cfg.DataDir != "" {
		// The job journal shares the data directory (and the injected
		// write-path faults) with the session store, but is its own WAL:
		// the two subsystems fail and recover independently.
		jcfg.Dir = filepath.Join(cfg.DataDir, "jobs")
		if adapter != nil {
			jcfg.Hooks = adapter.hooks()
		}
	}
	jm, err := jobs.Open(jcfg)
	if err != nil {
		if s.store != nil {
			s.store.Close()
		}
		return nil, err
	}
	s.jobs = jm
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/recovery", s.handleRecovery)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{name}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{name}/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/sessions/{name}/reanalyze", s.handleReanalyze)
	mux.HandleFunc("POST /v1/sessions/{name}/iterate", s.handleIterate)
	mux.HandleFunc("GET /v1/sessions/{name}/report", s.handleReport)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/shard/{op}", s.handleShardOp)
	mux.HandleFunc("POST /v1/workers", s.handleRegisterWorker)
	mux.HandleFunc("GET /v1/workers", s.handleListWorkers)
	s.handler = s.barrier(mux)
	return s, nil
}

// restoreSessions eagerly re-materializes recovered sessions into memory,
// up to the session cap; the remainder stay on disk and re-materialize
// lazily on first access. A spec whose sources no longer build is
// quarantined — the server still boots with every healthy session.
func (s *Server) restoreSessions() {
	names := s.store.Names()
	loaded := 0
	for _, name := range names {
		if loaded >= s.cfg.MaxSessions {
			s.cfg.Logf("restore: %d session(s) beyond the cap of %d stay on disk, reloadable on access", len(names)-loaded, s.cfg.MaxSessions)
			break
		}
		sp := s.store.Spec(name)
		if sp == nil {
			continue
		}
		ss, einfo := s.materialize(context.Background(), name, sp)
		if einfo != nil {
			if einfo.Kind == "budget" {
				// Out of memory budget, not an unreplayable spec: leave it
				// on disk for lazy revive once memory frees up.
				s.cfg.Logf("restore: %q stays on disk (memory budget): %s", name, einfo.Message)
				continue
			}
			s.quarantineSpec(name, einfo.Message)
			continue
		}
		if einfo := s.insert(ss); einfo != nil {
			s.cache.release(ss.entry)
			s.cfg.Logf("restore: %q stays on disk: %s", name, einfo.Message)
			continue
		}
		loaded++
		s.cfg.Logf("restore: session %q re-materialized from %s", name, s.cfg.DataDir)
	}
}

// materialize builds an in-memory session from a persisted spec: the same
// parse/lint/bind pipeline as a create, plus the restored padding, which
// seeds the engine on first analyze (core.NewSession applies seeded
// padding in its full analysis, and the session oracle pins that this
// equals create-then-reanalyze).
func (s *Server) materialize(ctx context.Context, name string, sp *sessionSpec) (*session, *ErrorInfo) {
	ss, einfo := s.buildSession(ctx, sp.Create)
	if einfo != nil {
		return nil, einfo
	}
	ss.padding = sp.Padding
	ss.persisted = true
	ss.restored = true
	if !sp.restoredAt.IsZero() {
		ss.recoveredAt = sp.restoredAt
	} else {
		ss.recoveredAt = s.cfg.now()
	}
	return ss, nil
}

// quarantineSpec moves an unreplayable persisted session out of the
// store: its spec bytes land in quarantine/ with the reason, a tombstone
// is journaled so it never resurfaces, and the recovery report gains the
// entry. The registry mutex guards the report against concurrent revives
// and /v1/recovery reads.
func (s *Server) quarantineSpec(name, reason string) {
	s.cfg.Logf("restore: session %q quarantined: %s", name, reason)
	if rep := s.store.QuarantineSpec(name, reason); rep != nil {
		s.mu.Lock()
		s.recovery.Quarantined = append(s.recovery.Quarantined, *rep)
		for i, n := range s.recovery.Restored {
			if n == name {
				s.recovery.Restored = append(s.recovery.Restored[:i], s.recovery.Restored[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
	}
}

// Close stops the worker heartbeat, drops hosted shard engines, and
// releases the store's journal handle. The server stays usable for
// in-memory reads; call it after Drain.
func (s *Server) Close() error {
	s.stopHeartbeat()
	s.closeShardRunners()
	if s.jobs != nil {
		s.jobs.Close(2 * time.Second)
	}
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs the graceful-shutdown sequence: stop admitting work, wait
// up to budget for in-flight requests, then cancel whatever is left and
// wait (bounded) for the cancellation to take. It returns true for a
// clean drain and false when work had to be cancelled.
func (s *Server) Drain(budget time.Duration) bool {
	s.beginDrain()
	// Job workers drain in parallel with the HTTP in-flight wait: running
	// attempts are cancelled through their contexts (iterate jobs keep
	// their round-boundary checkpoints) and requeued for the next boot.
	jobsDone := make(chan struct{})
	go func() {
		s.jobs.Close(budget)
		close(jobsDone)
	}()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		<-jobsDone
		return true
	case <-time.After(budget):
	}
	s.cfg.Logf("drain budget %s exceeded with %d in flight; cancelling", budget, s.inflightN.Load())
	s.forceCancel()
	// The cancellation propagates through every request context; give the
	// handlers one more budget to observe it, then give up either way —
	// exiting late is worse than exiting with a goroutine mid-flight.
	select {
	case <-done:
	case <-time.After(budget):
		s.cfg.Logf("in-flight work ignored cancellation for %s; giving up", budget)
	}
	<-jobsDone
	return false
}

// beginDrain flips the draining flag under flightMu (the barrier's
// admission lock), with the unlock deferred so nothing between the lock
// and the release can leak it.
func (s *Server) beginDrain() {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	s.draining.Store(true)
}

// enter registers a request with the drain accounting; it fails once
// draining has started.
func (s *Server) enter() bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	return true
}

func (s *Server) exit() {
	s.inflightN.Add(-1)
	s.inflight.Done()
}

// barrier is the outermost middleware: drain gating, in-flight
// accounting, and the per-request panic barrier.
func (s *Server) barrier(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Health probes stay answerable while draining (liveness and
		// readiness are separate questions from admission); everything
		// else is refused once the drain starts so the listener can empty
		// out.
		if probe := r.URL.Path == "/healthz" || r.URL.Path == "/readyz" || r.URL.Path == "/metrics"; !probe {
			if !s.enter() {
				s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
					Kind: "draining", Message: "server is draining; no new work accepted",
				}, s.cfg.RetryAfter)
				return
			}
			defer s.exit()
		}
		ww := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				// The request dies; the process, the other sessions, and
				// the other requests do not. The session (if the route
				// names one) is marked suspect so operators can see which
				// state absorbed a panic.
				name := r.PathValue("name")
				if name != "" {
					if ss := s.lookup(name); ss != nil {
						ss.markSuspect()
					}
				}
				s.cfg.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !ww.wrote {
					s.writeErr(ww, http.StatusInternalServerError, ErrorInfo{
						Kind:    "panic",
						Message: fmt.Sprintf("internal error: %v", p),
						Session: name,
					}, 0)
				}
			}
		}()
		next.ServeHTTP(ww, r)
	})
}

// statusWriter remembers whether a handler already wrote headers, so the
// panic barrier knows whether a structured 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// admit implements bounded, tenant-fair admission for the heavy
// endpoints. It returns a release function on success; otherwise it has
// already written the shed response. Waiting in the queue respects the
// request context and the drain signal; grants rotate round-robin
// across tenants (tenant.go), so one flooding tenant cannot starve the
// rest of the queue.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	tenant := tenantOf(r)
	start := time.Now()
	if s.gate.tryAcquire(tenant) {
		s.histAdmission.Observe(time.Since(start).Seconds())
		return func() { s.gate.release(tenant) }, true
	}
	// No slot free for this tenant: try to join the wait queue. A full
	// queue means the server is past its configured backlog — shed
	// immediately rather than building an invisible line of doomed
	// requests.
	wt := s.gate.enqueue(tenant)
	if wt == nil {
		s.shedN.Add(1)
		s.writeErr(w, http.StatusTooManyRequests, ErrorInfo{
			Kind:    "overloaded",
			Message: fmt.Sprintf("all %d workers busy and queue of %d full", s.cfg.MaxConcurrent, s.cfg.QueueDepth),
		}, s.cfg.RetryAfter)
		return nil, false
	}
	select {
	case <-wt.ready:
		s.histAdmission.Observe(time.Since(start).Seconds())
		return func() { s.gate.release(tenant) }, true
	case <-r.Context().Done():
		if !s.gate.abandon(wt) {
			// The grant raced the expiry; the slot is ours to return.
			s.gate.release(tenant)
		}
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
			Kind: "deadline", Message: "request expired while queued for a worker",
		}, s.cfg.RetryAfter)
		return nil, false
	case <-s.forceCtx.Done():
		if !s.gate.abandon(wt) {
			s.gate.release(tenant)
		}
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
			Kind: "draining", Message: "server drained while request was queued",
		}, s.cfg.RetryAfter)
		return nil, false
	}
}

// requestCtx derives the analysis context: the client's connection
// context, bounded by min(client ?timeout, MaxRequestTimeout), and tied to
// the forced-drain signal.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	eff := s.cfg.MaxRequestTimeout
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want a positive duration like 5s)", q)
		}
		if d < eff {
			eff = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), eff)
	stop := context.AfterFunc(s.forceCtx, cancel)
	return ctx, func() { stop(); cancel() }, nil
}

func (s *Server) lookup(name string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sessions[name]
	if ss == nil || ss.pending || ss.deleting {
		return nil
	}
	s.lastUsed[name] = s.cfg.now()
	return ss
}

// retain looks up a session and pins it against eviction and deletion for
// the duration of a request; callers must releaseRef when done. Without
// the pin, a request that passed lookup but is still queued in admit could
// have its session evicted underneath it and complete against an orphaned
// object whose cached result no report could ever see.
func (s *Server) retain(name string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sessions[name]
	if ss == nil || ss.pending || ss.deleting {
		return nil
	}
	s.lastUsed[name] = s.cfg.now()
	ss.refs++
	return ss
}

// revive transparently re-materializes a persisted session that is not in
// memory — LRU-evicted under pressure, or never loaded since the last
// restart. The rebuild (parse, lint, bind) happens outside the registry
// lock; insertion tolerates losing a race with a concurrent revive of the
// same name. Returns (nil, nil) when the store has no such session.
//
// The returned session is PINNED (refs incremented before it becomes
// visible in the registry) and the caller must releaseRef it. Handing it
// back unpinned would reopen an overload race: under heavy session churn
// every other loaded session can be pinned by in-flight requests, which
// makes a freshly revived refs==0 session the only LRU-eviction candidate
// — it would be evicted between revive and the caller's retain, turning a
// perfectly durable session into a spurious 404.
func (s *Server) revive(ctx context.Context, name string) (*session, *ErrorInfo) {
	if s.store == nil {
		return nil, nil
	}
	for {
		sp := s.store.Spec(name)
		if sp == nil {
			return nil, nil
		}
		sp.restoredAt = time.Time{} // a revive is recovered "now", not at boot
		ss, einfo := s.materialize(ctx, name, sp)
		if einfo != nil {
			if einfo.Kind == "budget" || einfo.Kind == "canceled" {
				// A budget shed is load and a canceled wait is the
				// caller's own deadline — neither is rot: the spec still
				// builds. Do NOT quarantine; surface the transient error
				// for the caller to map onto 503.
				return nil, einfo
			}
			s.quarantineSpec(name, einfo.Message)
			return nil, &ErrorInfo{
				Kind:    "unreplayable",
				Message: fmt.Sprintf("session %q could not be re-materialized from disk and was quarantined: %s", name, einfo.Message),
				Session: name,
			}
		}
		// Born pinned: the ref must exist before insert makes the session
		// visible, or a concurrent insert could evict it first.
		ss.refs = 1
		if einfo := s.insert(ss); einfo != nil {
			s.cache.release(ss.entry)
			if einfo.Kind == "conflict" {
				// A concurrent request revived it first; use theirs.
				//snavet:deferrelease the pin is handed to the caller, which defers releaseRef for the request's lifetime
				if cur := s.retain(name); cur != nil {
					return cur, nil
				}
				continue
			}
			return nil, einfo
		}
		// A DELETE may have tombstoned the spec between our read and the
		// insert; honor the tombstone rather than resurrecting.
		if s.store.Spec(name) == nil {
			func() {
				s.mu.Lock()
				defer s.mu.Unlock()
				if s.sessions[name] == ss {
					if ss.refs--; ss.refs == 0 {
						s.dropSessionLocked(ss)
					}
				}
			}()
			return nil, nil
		}
		s.cfg.Logf("session %q re-materialized from disk", name)
		return ss, nil
	}
}

// retainOrRevive pins the named session, re-materializing it from the
// store when it is not in memory. The caller must releaseRef the result.
func (s *Server) retainOrRevive(ctx context.Context, name string) (*session, *ErrorInfo) {
	//snavet:deferrelease the pin is handed to the caller, which defers releaseRef for the request's lifetime
	if ss := s.retain(name); ss != nil {
		return ss, nil
	}
	// revive returns the session already pinned; the caller defers
	// releaseRef just the same.
	return s.revive(ctx, name)
}

func (s *Server) releaseRef(ss *session) {
	s.mu.Lock()
	ss.refs--
	s.mu.Unlock()
}

// dropSessionLocked removes a session from the registry and releases
// its design-cache reference. Callers hold s.mu (the cache mutex is a
// leaf below it).
func (s *Server) dropSessionLocked(ss *session) {
	delete(s.sessions, ss.name)
	delete(s.lastUsed, ss.name)
	s.cache.release(ss.entry)
}

// insert registers a new session, evicting the least-recently-used idle
// session when the cap is reached. It fails with a conflict if the name
// exists and with session_limit when every loaded session is busy.
func (s *Server) insert(ss *session) *ErrorInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss.busy == nil {
		ss.busy = make(chan struct{}, 1)
	}
	if _, dup := s.sessions[ss.name]; dup {
		return &ErrorInfo{Kind: "conflict", Message: fmt.Sprintf("session %q already exists", ss.name), Session: ss.name}
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		victim := ""
		var oldest time.Time
		for name := range s.sessions {
			if victim == "" || s.lastUsed[name].Before(oldest) {
				// Only unreferenced sessions are evictable: refs counts
				// every in-flight request pinned to the session, including
				// ones still waiting in the admission queue, so eviction
				// can never orphan a request that already passed lookup.
				if s.sessions[name].refs == 0 {
					victim, oldest = name, s.lastUsed[name]
				}
			}
		}
		if victim == "" {
			return &ErrorInfo{Kind: "session_limit", Message: fmt.Sprintf("session cap %d reached and every session is busy", s.cfg.MaxSessions)}
		}
		if s.store != nil && s.sessions[victim].persisted {
			// Eviction under persistence is memory-only: the spec stays in
			// the store and the session re-materializes transparently on
			// its next access (losing only warm engine state and the
			// cached report).
			s.cfg.Logf("evicting idle session %q (LRU, still on disk) for %q", victim, ss.name)
		} else {
			s.cfg.Logf("evicting idle session %q (LRU) for %q", victim, ss.name)
		}
		s.dropSessionLocked(s.sessions[victim])
	}
	s.sessions[ss.name] = ss
	s.lastUsed[ss.name] = s.cfg.now()
	return nil
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:   status,
		Draining: s.draining.Load(),
		Sessions: n,
		Inflight: int(s.inflightN.Load()),
	})
}

// readySnapshot counts sessions and collects the open-breaker names under
// the session lock — released by defer so a panicking breaker probe cannot
// wedge the server, and sorted so /readyz is byte-stable across runs.
func (s *Server) readySnapshot() (n int, open []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n = len(s.sessions)
	now := s.cfg.now()
	for name, ss := range s.sessions {
		if _, isOpen := ss.breakerOpen(now); isOpen {
			open = append(open, name)
		}
	}
	sort.Strings(open)
	return n, open
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	n, open := s.readySnapshot()
	jm := s.jobs.MetricsSnapshot()
	running, queued := s.gate.snapshot()
	cs := s.cache.stats()
	resp := ReadyResponse{
		Status:          "ready",
		Inflight:        running,
		Queued:          queued,
		Capacity:        s.cfg.MaxConcurrent,
		QueueDepth:      s.cfg.QueueDepth,
		Sessions:        n,
		Shed:            s.shedN.Load(),
		OpenBreakers:    open,
		Durable:         s.store != nil,
		StorageDegraded: s.storeDegraded.Load() || jm.StorageDegraded,
		JobsQueued:      jm.Queued,
		JobsRunning:     jm.Running,
		MemBudget:       cs.Budget,
		MemCharged:      cs.Charged,
		CachedDesigns:   cs.Entries,
		CacheHits:       cs.Hits,
		CacheEvictions:  cs.Evictions,
		BudgetSheds:     cs.BudgetSheds,
	}
	if s.draining.Load() {
		resp.Status = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleRecovery serves the boot replay report: what was restored, what
// was quarantined and why, and whether the journal ended in a torn tail.
// Memory-only servers answer 404 — there is no durable state to recover.
func (s *Server) handleRecovery(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeErr(w, http.StatusNotFound, ErrorInfo{
			Kind: "not_found", Message: "server is running memory-only (no -data-dir); nothing to recover",
		}, 0)
		return
	}
	s.mu.Lock()
	rep := *s.recovery
	rep.Restored = append([]string(nil), s.recovery.Restored...)
	rep.Quarantined = append([]report.QuarantineJSON(nil), s.recovery.Quarantined...)
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req CreateSessionRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	ss, einfo := s.buildSession(r.Context(), &req)
	if einfo != nil {
		status := http.StatusBadRequest
		var retry time.Duration
		switch einfo.Kind {
		case "lint_rejected":
			status = http.StatusUnprocessableEntity
		case "budget":
			// The design did not fit the memory budget even after idle
			// eviction: shed, don't grow until the OOM killer decides.
			status = http.StatusServiceUnavailable
			retry = s.cfg.RetryAfter
		case "canceled":
			// The request expired while coalesced on an in-flight build;
			// the design is intact and likely cached by the retry.
			status = http.StatusServiceUnavailable
			retry = s.cfg.RetryAfter
		}
		s.writeErr(w, status, *einfo, retry)
		return
	}
	if s.store != nil {
		// A persisted session that was LRU-evicted from memory still
		// exists; its name is not reusable until it is deleted.
		if s.store.Spec(req.Name) != nil {
			s.cache.release(ss.entry)
			s.writeErr(w, http.StatusConflict, ErrorInfo{
				Kind: "conflict", Message: fmt.Sprintf("session %q already exists (persisted)", req.Name), Session: req.Name,
			}, 0)
			return
		}
		// Reserve the name first (pending sessions are invisible to
		// lookups and pinned against eviction), then journal, then
		// publish: the 201 is not sent until the create record is fsynced,
		// so an acknowledged session survives a crash; and a journaling
		// failure unwinds the reservation, so the in-memory state never
		// runs ahead of the durable state.
		ss.pending = true
		ss.persisted = true
		ss.refs = 1
	}
	if einfo := s.insert(ss); einfo != nil {
		s.cache.release(ss.entry)
		status := http.StatusConflict
		if einfo.Kind == "session_limit" {
			status = http.StatusServiceUnavailable
		}
		var retry time.Duration
		if status == http.StatusServiceUnavailable {
			retry = s.cfg.RetryAfter
		}
		s.writeErr(w, status, *einfo, retry)
		return
	}
	if s.store != nil {
		if err := s.storeCreate(&req); err != nil {
			s.storeDegraded.Store(true)
			func() {
				s.mu.Lock()
				defer s.mu.Unlock()
				s.dropSessionLocked(ss)
			}()
			s.cfg.Logf("session %q create not journaled, refused: %v", ss.name, err)
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind:    "storage",
				Message: fmt.Sprintf("session could not be journaled: %v", err),
				Session: ss.name,
			}, s.cfg.RetryAfter)
			return
		}
		s.mu.Lock()
		ss.pending = false
		ss.refs--
		s.mu.Unlock()
	}
	s.cfg.Logf("session %q created", ss.name)
	s.writeJSON(w, http.StatusCreated, ss.info(s.cfg.now()))
}

// buildSession resolves the request into a session: cheap per-session
// inputs (timing annotation, mode, fault spec) are parsed here, and the
// expensive immutable part — the parsed, linted, bound design — is
// acquired from the shared content-addressed cache, which builds it at
// most once per distinct source set. The returned session holds one
// cache reference; every path that discards the session must release it
// (dropSessionLocked, or cache.release on pre-insert failures).
func (s *Server) buildSession(ctx context.Context, req *CreateSessionRequest) (*session, *ErrorInfo) {
	if req.Name == "" {
		return nil, &ErrorInfo{Kind: "bad_request", Message: "session name is required"}
	}
	if (req.Netlist == "") == (req.Verilog == "") {
		return nil, &ErrorInfo{Kind: "bad_request", Message: "exactly one of netlist or verilog is required", Session: req.Name}
	}
	bad := func(err error) *ErrorInfo {
		return &ErrorInfo{Kind: "bad_request", Message: err.Error(), Session: req.Name}
	}
	var inputs map[string]*sta.Timing
	var err error
	if req.Timing != "" {
		if inputs, err = sta.ParseInputTiming(strings.NewReader(req.Timing)); err != nil {
			return nil, bad(err)
		}
	}
	mode, err := parseMode(req.Options.Mode)
	if err != nil {
		return nil, bad(err)
	}
	faults, err := workload.ParseRuntimeFaults(req.Options.InjectFault)
	if err != nil {
		return nil, bad(err)
	}
	src := sourcesOf(req)
	//snavet:deferrelease the entry reference is owned by the returned session and released by dropSessionLocked (or by the caller on insert failure)
	entry, einfo := s.cache.acquire(ctx, src, func() (*bind.Design, *ErrorInfo) {
		return buildDesign(src, inputs)
	})
	if einfo != nil {
		// The error object may be shared with coalesced waiters of the
		// same build; annotate a copy with this request's session name.
		e := *einfo
		e.Session = req.Name
		return nil, &e
	}
	return &session{
		name:  req.Name,
		spec:  req,
		busy:  make(chan struct{}, 1),
		b:     entry.b,
		entry: entry,
		opts: core.Options{
			Mode:             mode,
			FilterThreshold:  req.Options.Threshold,
			NoPropagation:    req.Options.NoPropagation,
			LogicCorrelation: req.Options.LogicCorrelation,
			Workers:          req.Options.Workers,
			FailSoft:         !req.Options.FailFast,
			PrepareHook:      faults.Hook(),
			STA:              sta.Options{InputTiming: inputs},
		},
	}, nil
}

// buildDesign is the cache-miss build path: parse every database, run
// the lint pre-flight, and bind. Errors carry no session name — the
// result may be shared by coalesced acquires from different sessions,
// so callers annotate a copy. A lint rejection fails the build (noise
// results computed from a broken database are worse than no results)
// and is deliberately not cached: it is deterministic, cheap to rerun,
// and caching failures would pin rejected source text in memory.
func buildDesign(src designSources, inputs map[string]*sta.Timing) (*bind.Design, *ErrorInfo) {
	bad := func(err error) *ErrorInfo {
		return &ErrorInfo{Kind: "bad_request", Message: err.Error()}
	}
	lib := liberty.Generic()
	if src.Liberty != "" {
		var err error
		if lib, err = liberty.Parse(strings.NewReader(src.Liberty)); err != nil {
			return nil, bad(err)
		}
	}
	var design *netlist.Design
	var err error
	if src.Verilog != "" {
		design, err = vlog.Parse(strings.NewReader(src.Verilog), lib)
	} else {
		design, err = netlist.Parse(strings.NewReader(src.Netlist))
	}
	if err != nil {
		return nil, bad(err)
	}
	var paras *spef.Parasitics
	if src.SPEF != "" {
		if paras, err = spef.Parse(strings.NewReader(src.SPEF)); err != nil {
			return nil, bad(err)
		}
	}
	lres := lint.Run(&lint.Input{Design: design, Lib: lib, Paras: paras, Inputs: inputs}, lint.Config{})
	if lres.HasErrors() {
		info := &ErrorInfo{
			Kind:    "lint_rejected",
			Message: fmt.Sprintf("design rejected by lint: %d error(s)", lres.Errors()),
		}
		for _, d := range lres.Diags {
			info.Lint = append(info.Lint, LintDiagJSON{
				Rule: d.Rule, Severity: d.Sev.String(), Object: d.Object, Message: d.Msg, Hint: d.Hint,
			})
		}
		return nil, info
	}
	b, err := bind.New(design, lib, paras)
	if err != nil {
		return nil, bad(err)
	}
	return b, nil
}

// listSnapshot collects the visible in-memory sessions under the session
// lock — released by defer so a panic mid-listing cannot wedge the server
// — in sorted name order so the listing is deterministic before the
// persisted-session merge.
func (s *Server) listSnapshot() (infos []SessionInfo, loaded map[string]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	infos = make([]SessionInfo, 0, len(names))
	loaded = make(map[string]bool, len(names))
	now := s.cfg.now()
	for _, name := range names {
		ss := s.sessions[name]
		loaded[name] = true
		if ss.pending || ss.deleting {
			// Mid-create and mid-delete sessions are invisible until their
			// journal record lands, like they are to lookups.
			continue
		}
		infos = append(infos, ss.info(now))
	}
	return infos, loaded
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos, loaded := s.listSnapshot()
	if s.store != nil {
		// Persisted sessions that are not in memory (LRU-evicted, or beyond
		// the cap at boot) are still part of the session list: any request
		// to one transparently reloads it.
		for _, name := range s.store.Names() {
			if !loaded[name] {
				infos = append(infos, SessionInfo{Name: name, Persisted: true})
			}
		}
	}
	sortInfos(infos)
	s.writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ss, einfo := s.retainOrRevive(r.Context(), name)
	if einfo != nil {
		s.writeReviveErr(w, einfo)
		return
	}
	if ss == nil {
		s.writeNotFound(w, name)
		return
	}
	defer s.releaseRef(ss)
	s.writeJSON(w, http.StatusOK, ss.info(s.cfg.now()))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	ss, inMem := s.sessions[name]
	if inMem && (ss.refs > 0 || ss.deleting) {
		// In-flight requests pin the session (see retain); deleting it now
		// would let them complete against an orphaned object. Refuse and
		// let the caller retry once the session quiesces.
		s.mu.Unlock()
		s.writeErr(w, http.StatusConflict, ErrorInfo{
			Kind: "busy", Message: fmt.Sprintf("session %q has requests in flight", name), Session: name,
		}, s.cfg.RetryAfter)
		return
	}
	// A persisted session may exist on disk only (LRU-evicted); it is
	// deletable without reloading it.
	persisted := s.store != nil && s.store.Spec(name) != nil
	if !inMem && !persisted {
		s.mu.Unlock()
		s.writeNotFound(w, name)
		return
	}
	if inMem {
		// Block new retains/revives of the name while the tombstone is
		// journaled outside the lock.
		ss.deleting = true
	}
	s.mu.Unlock()

	if persisted {
		// The tombstone must be durable BEFORE the 200: a crash right
		// after the reply must not resurrect the session on replay.
		if err := s.storeDelete(name); err != nil {
			s.storeDegraded.Store(true)
			s.mu.Lock()
			if inMem {
				ss.deleting = false
			}
			s.mu.Unlock()
			s.cfg.Logf("session %q delete not journaled, refused: %v", name, err)
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind:    "storage",
				Message: fmt.Sprintf("tombstone could not be journaled: %v", err),
				Session: name,
			}, s.cfg.RetryAfter)
			return
		}
	}
	func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if cur := s.sessions[name]; cur != nil && (cur == ss || !inMem) {
			// Dropping the session releases its design-cache reference;
			// another session over the same sources keeps the entry alive
			// (its refcount is per-holder, not per-design).
			s.dropSessionLocked(cur)
		}
	}()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ss, einfo := s.retainOrRevive(r.Context(), name)
	if einfo != nil {
		s.writeReviveErr(w, einfo)
		return
	}
	if ss == nil {
		s.writeNotFound(w, name)
		return
	}
	defer s.releaseRef(ss)
	body := ss.report()
	if body == nil {
		// The report cache is warm state, not durable state: a session
		// re-materialized from disk has no cached analysis until the next
		// analyze regenerates it (deterministically — the engine oracle
		// pins scratch-vs-incremental equality).
		msg := "session has no completed analysis yet"
		if ss.isRestored() {
			msg = "session was re-materialized from disk and has no cached analysis yet; POST analyze to regenerate it"
		}
		s.writeErr(w, http.StatusNotFound, ErrorInfo{
			Kind: "not_found", Message: msg, Session: ss.name,
		}, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeBodyOptional(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	s.analysis(w, r, func(ctx context.Context, ss *session) (*AnalyzeResponse, error) {
		eng, rebuilt, err := ss.ensureEngine(ctx)
		if err != nil {
			return nil, err
		}
		resp := &AnalyzeResponse{
			Session: ss.name,
			Noise:   report.BuildJSON(eng.Noise()),
			Rebuilt: rebuilt,
		}
		if req.Delay {
			resp.Delay = report.BuildDelayJSON(eng.Delay())
		}
		return resp, nil
	})
}

func (s *Server) handleReanalyze(w http.ResponseWriter, r *http.Request) {
	var req ReanalyzeRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	for net, pad := range req.Padding {
		if pad < 0 || pad != pad || pad-pad != 0 { // negative, NaN, or Inf
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{
				Kind: "bad_request", Message: fmt.Sprintf("bad padding %v for net %q (want finite seconds >= 0)", pad, net),
			}, 0)
			return
		}
	}
	s.analysis(w, r, func(ctx context.Context, ss *session) (*AnalyzeResponse, error) {
		eng, rebuilt, err := ss.ensureEngine(ctx)
		if err != nil {
			return nil, err
		}
		res, changed, err := eng.Reanalyze(ctx, req.Padding)
		if err != nil {
			return nil, err
		}
		if changed > 0 {
			// Mirror the engine's cumulative padding (we hold the busy slot)
			// and journal it, so a rebuild — in this process or the next —
			// replays the session to exactly this state.
			ss.padding = eng.Padding()
			s.persistPadding(ss)
		}
		resp := &AnalyzeResponse{
			Session:     ss.name,
			Noise:       report.BuildJSON(res),
			ChangedNets: changed,
			Rebuilt:     rebuilt,
		}
		if req.Delay {
			resp.Delay = report.BuildDelayJSON(eng.Delay())
		}
		return resp, nil
	})
}

// persistPadding journals a session's cumulative reanalyze padding.
// Failure is deliberately fail-soft — unlike create and delete, the
// client-visible operation (the analysis) already succeeded, and padding
// is max-monotonic, so a replay missing this record merely loses a delta
// the client can re-apply verbatim. Degrade and log instead of failing a
// correct response.
func (s *Server) persistPadding(ss *session) {
	if s.store == nil || !ss.persisted {
		return
	}
	if err := s.storePadding(ss.name, ss.padding); err != nil {
		s.storeDegraded.Store(true)
		s.cfg.Logf("session %q padding not journaled (analysis succeeded; the delta is safely re-appliable): %v", ss.name, err)
	}
}

// storeCreate, storeDelete, and storePadding wrap the durable store's
// journal mutations with the fsync-latency histogram: every journaled
// record is one fsync'd append, so timing these three seams covers the
// whole write path.
func (s *Server) storeCreate(req *CreateSessionRequest) error {
	start := time.Now()
	err := s.store.Create(req)
	s.histFsync.Observe(time.Since(start).Seconds())
	return err
}

func (s *Server) storeDelete(name string) error {
	start := time.Now()
	err := s.store.Delete(name)
	s.histFsync.Observe(time.Since(start).Seconds())
	return err
}

func (s *Server) storePadding(name string, padding map[string]float64) error {
	start := time.Now()
	err := s.store.Padding(name, padding)
	s.histFsync.Observe(time.Since(start).Seconds())
	return err
}

// writeReviveErr maps a failed lazy revive onto a response: a budget
// shed is transient load (503 + Retry-After — the spec is intact and
// builds once memory frees), anything else means the spec was
// quarantined as unreplayable (404 with the detail).
func (s *Server) writeReviveErr(w http.ResponseWriter, einfo *ErrorInfo) {
	switch einfo.Kind {
	case "budget", "session_limit", "canceled":
		// All transient refusals — the memory budget or loaded-session
		// cap is full right now, or the request expired while coalesced
		// on an in-flight rebuild — not statements about the session's
		// existence; shed with Retry-After like any overload.
		s.writeErr(w, http.StatusServiceUnavailable, *einfo, s.cfg.RetryAfter)
	default:
		s.writeErr(w, http.StatusNotFound, *einfo, 0)
	}
}

// analysis is the shared harness of the two heavy endpoints: session
// lookup, breaker check, admission, deadline plumbing, serialized engine
// work, breaker accounting, and error mapping.
func (s *Server) analysis(w http.ResponseWriter, r *http.Request, work func(context.Context, *session) (*AnalyzeResponse, error)) {
	name := r.PathValue("name")
	ss, einfo := s.retainOrRevive(r.Context(), name)
	if einfo != nil {
		s.writeReviveErr(w, einfo)
		return
	}
	if ss == nil {
		s.writeNotFound(w, name)
		return
	}
	defer s.releaseRef(ss)
	retryAfter, probe, open := ss.breakerAdmit(s.cfg.now(), s.cfg.RetryAfter)
	if open {
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
			Kind:    "breaker_open",
			Message: fmt.Sprintf("session breaker open after %d consecutive degraded results", s.cfg.BreakerTrips),
			Session: name,
		}, retryAfter)
		return
	}
	if probe {
		// The probe slot must be returned on every path out of this
		// handler — including cancellation and panic — or the half-open
		// breaker would reject requests forever.
		defer ss.probeRelease()
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	defer cancel()

	// Serialize engine work per session. The wait is a select against the
	// request deadline and the drain signal, so a pile-up behind one slow
	// session sheds at its deadline instead of pinning workers; a
	// sync.Mutex here would block uncancellably.
	if !ss.acquire(ctx, s.forceCtx) {
		if s.forceCtx.Err() != nil || errors.Is(ctx.Err(), context.Canceled) {
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "canceled", Message: "request cancelled while waiting for the session", Session: name,
			}, 0)
		} else {
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "deadline", Message: "request deadline expired while waiting for the session", Session: name,
			}, s.cfg.RetryAfter)
		}
		return
	}
	resp, err := func() (*AnalyzeResponse, error) {
		// Release under defer so a panic in the engine or handler cannot
		// leak the busy slot and wedge every later request to the session
		// (the barrier turns the panic itself into a structured 500).
		defer ss.release()
		astart := time.Now()
		defer func() { s.histAnalysis.Observe(time.Since(astart).Seconds()) }()
		return work(ctx, ss)
	}()

	if err != nil {
		// Cancellation is not session health: only engine failures feed
		// the breaker.
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "deadline", Message: fmt.Sprintf("analysis exceeded its deadline: %v", err), Session: name,
			}, s.cfg.RetryAfter)
		case errors.Is(err, context.Canceled):
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "canceled", Message: fmt.Sprintf("analysis cancelled: %v", err), Session: name,
			}, 0)
		default:
			ss.recordOutcome(true, s.cfg.now(), s.cfg.BreakerTrips, s.cfg.BreakerCooldown)
			s.writeErr(w, http.StatusInternalServerError, ErrorInfo{
				Kind: "engine", Message: err.Error(), Session: name,
			}, 0)
		}
		return
	}
	degraded := resp.Noise.Stats.DegradedNets > 0
	ss.recordOutcome(degraded, s.cfg.now(), s.cfg.BreakerTrips, s.cfg.BreakerCooldown)
	body, err := json.Marshal(resp)
	if err != nil {
		// Unreachable as long as the report schema keeps its no-NaN
		// discipline; fail loudly rather than hang the connection.
		s.writeErr(w, http.StatusInternalServerError, ErrorInfo{
			Kind: "engine", Message: fmt.Sprintf("encoding response: %v", err), Session: name,
		}, 0)
		return
	}
	ss.recordResult(resp, body)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// --- helpers ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, info ErrorInfo, retryAfter time.Duration) {
	if retryAfter > 0 {
		// Retry-After is integral seconds; round up so clients never
		// retry into a still-closed window.
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	s.writeJSON(w, status, ErrorBody{Error: info})
}

func (s *Server) writeNotFound(w http.ResponseWriter, name string) {
	s.writeErr(w, http.StatusNotFound, ErrorInfo{
		Kind: "not_found", Message: fmt.Sprintf("no session %q", name), Session: name,
	}, 0)
}

// decodeBody strictly decodes one JSON object.
func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// decodeBodyOptional accepts an empty body as the zero value.
func decodeBodyOptional(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "all":
		return core.ModeAllAggressors, nil
	case "timing":
		return core.ModeTimingWindows, nil
	case "", "noise":
		return core.ModeNoiseWindows, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want all|timing|noise)", s)
}

func sortInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}
