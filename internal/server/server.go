// Package server implements snad, the fail-soft static-noise-analysis
// service: an HTTP/JSON daemon that loads designs into named sessions
// (each wrapping core.Session, the persistent incremental analyzer) and
// serves analyze / delta-reanalyze / report queries.
//
// Robustness is the point, not a feature:
//
//   - Bounded admission: at most MaxConcurrent analyses run at once and at
//     most QueueDepth requests wait; overflow is shed immediately with
//     429 and a Retry-After hint, so a traffic spike degrades into fast
//     rejections instead of unbounded memory growth and timeouts.
//
//   - Per-request deadlines: the effective deadline is the tighter of the
//     client's ?timeout and the server's MaxRequestTimeout, propagated
//     into core.AnalyzeCtx's cooperative cancellation. No request can
//     hold a worker forever.
//
//   - Per-request panic isolation: a recover barrier converts a handler
//     panic into a structured 500 and marks the session suspect; other
//     requests and other sessions are untouched. (Per-victim panics never
//     even reach it — the engine's own fail-soft isolation degrades the
//     victim and reports a diagnostic.)
//
//   - A degradation-aware circuit breaker per session: consecutive
//     engine-degraded results trip the session to 503 for a cooldown, so
//     a poisoned design stops burning worker time while healthy sessions
//     keep serving.
//
//   - Graceful drain: Drain stops admission (readyz flips to 503), lets
//     in-flight work finish within a budget, then cancels whatever is
//     left through the same context plumbing. The caller (cmd/snad) maps
//     a clean or forced drain onto the exit-code discipline.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
	"repro/internal/workload"
)

// Config tunes the service. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// MaxSessions caps the number of loaded sessions; creating one past
	// the cap evicts the least-recently-used idle session, and if every
	// session is busy the create is shed (default 8).
	MaxSessions int
	// MaxConcurrent caps simultaneously running analyses (default
	// GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth caps requests waiting for a worker slot; overflow is
	// shed with 429 (default 2×MaxConcurrent).
	QueueDepth int
	// MaxRequestTimeout is the server-side ceiling on one request's
	// analysis deadline; a client ?timeout tighter than this wins
	// (default 30s).
	MaxRequestTimeout time.Duration
	// RetryAfter is the hint attached to 429 shed responses (default 1s).
	RetryAfter time.Duration
	// BreakerTrips is the number of consecutive engine-degraded results
	// that trip a session's circuit breaker (default 3).
	BreakerTrips int
	// BreakerCooldown is how long a tripped session sheds requests before
	// going half-open (default 10s).
	BreakerCooldown time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)

	// now is the clock, injectable for breaker tests.
	now func() time.Time
}

func (c *Config) fill() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.MaxRequestTimeout <= 0 {
		c.MaxRequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BreakerTrips <= 0 {
		c.BreakerTrips = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Server is the snad service state. Create one with New, serve
// Handler(), and call Drain on shutdown.
type Server struct {
	cfg Config

	// sem holds a token per running analysis; queue holds a token per
	// waiting request. Together they are the bounded admission gate.
	sem   chan struct{}
	queue chan struct{}

	// flightMu orders request entry against the drain flag so Drain's
	// WaitGroup wait cannot race a late arrival.
	flightMu  sync.Mutex
	draining  atomic.Bool
	inflight  sync.WaitGroup
	inflightN atomic.Int64
	queuedN   atomic.Int64
	shedN     atomic.Int64

	// forceCtx is cancelled when a drain exceeds its budget; every
	// request context is derived to die with it.
	forceCtx    context.Context
	forceCancel context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*session
	lastUsed map[string]time.Time

	handler http.Handler
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		queue:    make(chan struct{}, cfg.QueueDepth),
		sessions: make(map[string]*session),
		lastUsed: make(map[string]time.Time),
	}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{name}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{name}/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/sessions/{name}/reanalyze", s.handleReanalyze)
	mux.HandleFunc("GET /v1/sessions/{name}/report", s.handleReport)
	s.handler = s.barrier(mux)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs the graceful-shutdown sequence: stop admitting work, wait
// up to budget for in-flight requests, then cancel whatever is left and
// wait (bounded) for the cancellation to take. It returns true for a
// clean drain and false when work had to be cancelled.
func (s *Server) Drain(budget time.Duration) bool {
	s.flightMu.Lock()
	s.draining.Store(true)
	s.flightMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(budget):
	}
	s.cfg.Logf("drain budget %s exceeded with %d in flight; cancelling", budget, s.inflightN.Load())
	s.forceCancel()
	// The cancellation propagates through every request context; give the
	// handlers one more budget to observe it, then give up either way —
	// exiting late is worse than exiting with a goroutine mid-flight.
	select {
	case <-done:
	case <-time.After(budget):
		s.cfg.Logf("in-flight work ignored cancellation for %s; giving up", budget)
	}
	return false
}

// enter registers a request with the drain accounting; it fails once
// draining has started.
func (s *Server) enter() bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	return true
}

func (s *Server) exit() {
	s.inflightN.Add(-1)
	s.inflight.Done()
}

// barrier is the outermost middleware: drain gating, in-flight
// accounting, and the per-request panic barrier.
func (s *Server) barrier(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Health probes stay answerable while draining (liveness and
		// readiness are separate questions from admission); everything
		// else is refused once the drain starts so the listener can empty
		// out.
		if probe := r.URL.Path == "/healthz" || r.URL.Path == "/readyz"; !probe {
			if !s.enter() {
				s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
					Kind: "draining", Message: "server is draining; no new work accepted",
				}, s.cfg.RetryAfter)
				return
			}
			defer s.exit()
		}
		ww := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				// The request dies; the process, the other sessions, and
				// the other requests do not. The session (if the route
				// names one) is marked suspect so operators can see which
				// state absorbed a panic.
				name := r.PathValue("name")
				if name != "" {
					if ss := s.lookup(name); ss != nil {
						ss.markSuspect()
					}
				}
				s.cfg.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !ww.wrote {
					s.writeErr(ww, http.StatusInternalServerError, ErrorInfo{
						Kind:    "panic",
						Message: fmt.Sprintf("internal error: %v", p),
						Session: name,
					}, 0)
				}
			}
		}()
		next.ServeHTTP(ww, r)
	})
}

// statusWriter remembers whether a handler already wrote headers, so the
// panic barrier knows whether a structured 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// admit implements bounded admission for the heavy endpoints. It returns
// a release function on success; otherwise it has already written the
// shed response. Waiting in the queue respects the request context and
// the drain signal.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	// No worker free: try to take a queue slot. A full queue means the
	// server is past its configured backlog — shed immediately rather
	// than building an invisible line of doomed requests.
	select {
	case s.queue <- struct{}{}:
	default:
		s.shedN.Add(1)
		s.writeErr(w, http.StatusTooManyRequests, ErrorInfo{
			Kind:    "overloaded",
			Message: fmt.Sprintf("all %d workers busy and queue of %d full", s.cfg.MaxConcurrent, s.cfg.QueueDepth),
		}, s.cfg.RetryAfter)
		return nil, false
	}
	s.queuedN.Add(1)
	defer func() {
		s.queuedN.Add(-1)
		<-s.queue
	}()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-r.Context().Done():
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
			Kind: "deadline", Message: "request expired while queued for a worker",
		}, s.cfg.RetryAfter)
		return nil, false
	case <-s.forceCtx.Done():
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
			Kind: "draining", Message: "server drained while request was queued",
		}, 0)
		return nil, false
	}
}

// requestCtx derives the analysis context: the client's connection
// context, bounded by min(client ?timeout, MaxRequestTimeout), and tied to
// the forced-drain signal.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	eff := s.cfg.MaxRequestTimeout
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want a positive duration like 5s)", q)
		}
		if d < eff {
			eff = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), eff)
	stop := context.AfterFunc(s.forceCtx, cancel)
	return ctx, func() { stop(); cancel() }, nil
}

func (s *Server) lookup(name string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sessions[name]
	if ss != nil {
		s.lastUsed[name] = s.cfg.now()
	}
	return ss
}

// retain looks up a session and pins it against eviction and deletion for
// the duration of a request; callers must releaseRef when done. Without
// the pin, a request that passed lookup but is still queued in admit could
// have its session evicted underneath it and complete against an orphaned
// object whose cached result no report could ever see.
func (s *Server) retain(name string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sessions[name]
	if ss != nil {
		s.lastUsed[name] = s.cfg.now()
		ss.refs++
	}
	return ss
}

func (s *Server) releaseRef(ss *session) {
	s.mu.Lock()
	ss.refs--
	s.mu.Unlock()
}

// insert registers a new session, evicting the least-recently-used idle
// session when the cap is reached. It fails with a conflict if the name
// exists and with session_limit when every loaded session is busy.
func (s *Server) insert(ss *session) *ErrorInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss.busy == nil {
		ss.busy = make(chan struct{}, 1)
	}
	if _, dup := s.sessions[ss.name]; dup {
		return &ErrorInfo{Kind: "conflict", Message: fmt.Sprintf("session %q already exists", ss.name), Session: ss.name}
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		victim := ""
		var oldest time.Time
		for name := range s.sessions {
			if victim == "" || s.lastUsed[name].Before(oldest) {
				// Only unreferenced sessions are evictable: refs counts
				// every in-flight request pinned to the session, including
				// ones still waiting in the admission queue, so eviction
				// can never orphan a request that already passed lookup.
				if s.sessions[name].refs == 0 {
					victim, oldest = name, s.lastUsed[name]
				}
			}
		}
		if victim == "" {
			return &ErrorInfo{Kind: "session_limit", Message: fmt.Sprintf("session cap %d reached and every session is busy", s.cfg.MaxSessions)}
		}
		s.cfg.Logf("evicting idle session %q (LRU) for %q", victim, ss.name)
		delete(s.sessions, victim)
		delete(s.lastUsed, victim)
	}
	s.sessions[ss.name] = ss
	s.lastUsed[ss.name] = s.cfg.now()
	return nil
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:   status,
		Draining: s.draining.Load(),
		Sessions: n,
		Inflight: int(s.inflightN.Load()),
	})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	var open []string
	now := s.cfg.now()
	for name, ss := range s.sessions {
		if _, isOpen := ss.breakerOpen(now); isOpen {
			open = append(open, name)
		}
	}
	s.mu.Unlock()
	resp := ReadyResponse{
		Status:       "ready",
		Inflight:     len(s.sem),
		Queued:       int(s.queuedN.Load()),
		Capacity:     s.cfg.MaxConcurrent,
		QueueDepth:   s.cfg.QueueDepth,
		Sessions:     n,
		Shed:         s.shedN.Load(),
		OpenBreakers: open,
	}
	if s.draining.Load() {
		resp.Status = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req CreateSessionRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	ss, einfo := s.buildSession(&req)
	if einfo != nil {
		status := http.StatusBadRequest
		switch einfo.Kind {
		case "lint_rejected":
			status = http.StatusUnprocessableEntity
		}
		s.writeErr(w, status, *einfo, 0)
		return
	}
	if einfo := s.insert(ss); einfo != nil {
		status := http.StatusConflict
		if einfo.Kind == "session_limit" {
			status = http.StatusServiceUnavailable
		}
		var retry time.Duration
		if status == http.StatusServiceUnavailable {
			retry = s.cfg.RetryAfter
		}
		s.writeErr(w, status, *einfo, retry)
		return
	}
	s.cfg.Logf("session %q created", ss.name)
	s.writeJSON(w, http.StatusCreated, ss.info(s.cfg.now()))
}

// buildSession parses, lints, and binds the request's databases.
func (s *Server) buildSession(req *CreateSessionRequest) (*session, *ErrorInfo) {
	if req.Name == "" {
		return nil, &ErrorInfo{Kind: "bad_request", Message: "session name is required"}
	}
	if (req.Netlist == "") == (req.Verilog == "") {
		return nil, &ErrorInfo{Kind: "bad_request", Message: "exactly one of netlist or verilog is required", Session: req.Name}
	}
	bad := func(err error) *ErrorInfo {
		return &ErrorInfo{Kind: "bad_request", Message: err.Error(), Session: req.Name}
	}
	lib := liberty.Generic()
	if req.Liberty != "" {
		var err error
		if lib, err = liberty.Parse(strings.NewReader(req.Liberty)); err != nil {
			return nil, bad(err)
		}
	}
	var design *netlist.Design
	var err error
	if req.Verilog != "" {
		design, err = vlog.Parse(strings.NewReader(req.Verilog), lib)
	} else {
		design, err = netlist.Parse(strings.NewReader(req.Netlist))
	}
	if err != nil {
		return nil, bad(err)
	}
	var paras *spef.Parasitics
	if req.SPEF != "" {
		if paras, err = spef.Parse(strings.NewReader(req.SPEF)); err != nil {
			return nil, bad(err)
		}
	}
	var inputs map[string]*sta.Timing
	if req.Timing != "" {
		if inputs, err = sta.ParseInputTiming(strings.NewReader(req.Timing)); err != nil {
			return nil, bad(err)
		}
	}
	mode, err := parseMode(req.Options.Mode)
	if err != nil {
		return nil, bad(err)
	}
	faults, err := workload.ParseRuntimeFaults(req.Options.InjectFault)
	if err != nil {
		return nil, bad(err)
	}
	// The same pre-flight the CLI runs: noise results computed from a
	// broken database are worse than no results, so error-severity lint
	// findings reject the create with the findings attached.
	lres := lint.Run(&lint.Input{Design: design, Lib: lib, Paras: paras, Inputs: inputs}, lint.Config{})
	if lres.HasErrors() {
		info := &ErrorInfo{
			Kind:    "lint_rejected",
			Message: fmt.Sprintf("design rejected by lint: %d error(s)", lres.Errors()),
			Session: req.Name,
		}
		for _, d := range lres.Diags {
			info.Lint = append(info.Lint, LintDiagJSON{
				Rule: d.Rule, Severity: d.Sev.String(), Object: d.Object, Message: d.Msg, Hint: d.Hint,
			})
		}
		return nil, info
	}
	b, err := bind.New(design, lib, paras)
	if err != nil {
		return nil, bad(err)
	}
	return &session{
		name: req.Name,
		busy: make(chan struct{}, 1),
		b:    b,
		opts: core.Options{
			Mode:             mode,
			FilterThreshold:  req.Options.Threshold,
			NoPropagation:    req.Options.NoPropagation,
			LogicCorrelation: req.Options.LogicCorrelation,
			Workers:          req.Options.Workers,
			FailSoft:         !req.Options.FailFast,
			PrepareHook:      faults.Hook(),
			STA:              sta.Options{InputTiming: inputs},
		},
	}, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	infos := make([]SessionInfo, 0, len(names))
	now := s.cfg.now()
	for _, name := range names {
		infos = append(infos, s.sessions[name].info(now))
	}
	s.mu.Unlock()
	sortInfos(infos)
	s.writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("name"))
	if ss == nil {
		s.writeNotFound(w, r.PathValue("name"))
		return
	}
	s.writeJSON(w, http.StatusOK, ss.info(s.cfg.now()))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	ss, ok := s.sessions[name]
	if ok && ss.refs > 0 {
		// In-flight requests pin the session (see retain); deleting it now
		// would let them complete against an orphaned object. Refuse and
		// let the caller retry once the session quiesces.
		s.mu.Unlock()
		s.writeErr(w, http.StatusConflict, ErrorInfo{
			Kind: "busy", Message: fmt.Sprintf("session %q has requests in flight", name), Session: name,
		}, s.cfg.RetryAfter)
		return
	}
	delete(s.sessions, name)
	delete(s.lastUsed, name)
	s.mu.Unlock()
	if !ok {
		s.writeNotFound(w, name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("name"))
	if ss == nil {
		s.writeNotFound(w, r.PathValue("name"))
		return
	}
	body := ss.report()
	if body == nil {
		s.writeErr(w, http.StatusNotFound, ErrorInfo{
			Kind: "not_found", Message: "session has no completed analysis yet", Session: ss.name,
		}, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeBodyOptional(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	s.analysis(w, r, func(ctx context.Context, ss *session) (*AnalyzeResponse, error) {
		eng, rebuilt, err := ss.ensureEngine(ctx)
		if err != nil {
			return nil, err
		}
		resp := &AnalyzeResponse{
			Session: ss.name,
			Noise:   report.BuildJSON(eng.Noise()),
			Rebuilt: rebuilt,
		}
		if req.Delay {
			resp.Delay = report.BuildDelayJSON(eng.Delay())
		}
		return resp, nil
	})
}

func (s *Server) handleReanalyze(w http.ResponseWriter, r *http.Request) {
	var req ReanalyzeRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	for net, pad := range req.Padding {
		if pad < 0 || pad != pad || pad-pad != 0 { // negative, NaN, or Inf
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{
				Kind: "bad_request", Message: fmt.Sprintf("bad padding %v for net %q (want finite seconds >= 0)", pad, net),
			}, 0)
			return
		}
	}
	s.analysis(w, r, func(ctx context.Context, ss *session) (*AnalyzeResponse, error) {
		eng, rebuilt, err := ss.ensureEngine(ctx)
		if err != nil {
			return nil, err
		}
		res, changed, err := eng.Reanalyze(ctx, req.Padding)
		if err != nil {
			return nil, err
		}
		resp := &AnalyzeResponse{
			Session:     ss.name,
			Noise:       report.BuildJSON(res),
			ChangedNets: changed,
			Rebuilt:     rebuilt,
		}
		if req.Delay {
			resp.Delay = report.BuildDelayJSON(eng.Delay())
		}
		return resp, nil
	})
}

// analysis is the shared harness of the two heavy endpoints: session
// lookup, breaker check, admission, deadline plumbing, serialized engine
// work, breaker accounting, and error mapping.
func (s *Server) analysis(w http.ResponseWriter, r *http.Request, work func(context.Context, *session) (*AnalyzeResponse, error)) {
	name := r.PathValue("name")
	ss := s.retain(name)
	if ss == nil {
		s.writeNotFound(w, name)
		return
	}
	defer s.releaseRef(ss)
	retryAfter, probe, open := ss.breakerAdmit(s.cfg.now(), s.cfg.RetryAfter)
	if open {
		s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
			Kind:    "breaker_open",
			Message: fmt.Sprintf("session breaker open after %d consecutive degraded results", s.cfg.BreakerTrips),
			Session: name,
		}, retryAfter)
		return
	}
	if probe {
		// The probe slot must be returned on every path out of this
		// handler — including cancellation and panic — or the half-open
		// breaker would reject requests forever.
		defer ss.probeRelease()
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	defer cancel()

	// Serialize engine work per session. The wait is a select against the
	// request deadline and the drain signal, so a pile-up behind one slow
	// session sheds at its deadline instead of pinning workers; a
	// sync.Mutex here would block uncancellably.
	if !ss.acquire(ctx, s.forceCtx) {
		if s.forceCtx.Err() != nil || errors.Is(ctx.Err(), context.Canceled) {
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "canceled", Message: "request cancelled while waiting for the session", Session: name,
			}, 0)
		} else {
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "deadline", Message: "request deadline expired while waiting for the session", Session: name,
			}, s.cfg.RetryAfter)
		}
		return
	}
	resp, err := func() (*AnalyzeResponse, error) {
		// Release under defer so a panic in the engine or handler cannot
		// leak the busy slot and wedge every later request to the session
		// (the barrier turns the panic itself into a structured 500).
		defer ss.release()
		return work(ctx, ss)
	}()

	if err != nil {
		// Cancellation is not session health: only engine failures feed
		// the breaker.
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "deadline", Message: fmt.Sprintf("analysis exceeded its deadline: %v", err), Session: name,
			}, s.cfg.RetryAfter)
		case errors.Is(err, context.Canceled):
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "canceled", Message: fmt.Sprintf("analysis cancelled: %v", err), Session: name,
			}, 0)
		default:
			ss.recordOutcome(true, s.cfg.now(), s.cfg.BreakerTrips, s.cfg.BreakerCooldown)
			s.writeErr(w, http.StatusInternalServerError, ErrorInfo{
				Kind: "engine", Message: err.Error(), Session: name,
			}, 0)
		}
		return
	}
	degraded := resp.Noise.Stats.DegradedNets > 0
	ss.recordOutcome(degraded, s.cfg.now(), s.cfg.BreakerTrips, s.cfg.BreakerCooldown)
	body, err := json.Marshal(resp)
	if err != nil {
		// Unreachable as long as the report schema keeps its no-NaN
		// discipline; fail loudly rather than hang the connection.
		s.writeErr(w, http.StatusInternalServerError, ErrorInfo{
			Kind: "engine", Message: fmt.Sprintf("encoding response: %v", err), Session: name,
		}, 0)
		return
	}
	ss.recordResult(resp, body)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// --- helpers ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, info ErrorInfo, retryAfter time.Duration) {
	if retryAfter > 0 {
		// Retry-After is integral seconds; round up so clients never
		// retry into a still-closed window.
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	s.writeJSON(w, status, ErrorBody{Error: info})
}

func (s *Server) writeNotFound(w http.ResponseWriter, name string) {
	s.writeErr(w, http.StatusNotFound, ErrorInfo{
		Kind: "not_found", Message: fmt.Sprintf("no session %q", name), Session: name,
	}, 0)
}

// decodeBody strictly decodes one JSON object.
func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// decodeBodyOptional accepts an empty body as the zero value.
func decodeBodyOptional(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "all":
		return core.ModeAllAggressors, nil
	case "timing":
		return core.ModeTimingWindows, nil
	case "", "noise":
		return core.ModeNoiseWindows, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want all|timing|noise)", s)
}

func sortInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}
