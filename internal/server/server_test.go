package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// busPayload serializes a generated coupled bus into a create-session
// request body.
func busPayload(t *testing.T, name string, bits int, opts SessionOptions) CreateSessionRequest {
	t.Helper()
	g, err := workload.Bus(workload.BusSpec{Bits: bits, Segs: 2, WindowWidth: 80 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	var net, sp, win bytes.Buffer
	if err := netlist.Write(&net, g.Design); err != nil {
		t.Fatal(err)
	}
	if err := spef.Write(&sp, g.Paras); err != nil {
		t.Fatal(err)
	}
	if err := sta.WriteInputTiming(&win, g.Inputs); err != nil {
		t.Fatal(err)
	}
	return CreateSessionRequest{
		Name:    name,
		Netlist: net.String(),
		SPEF:    sp.String(),
		Timing:  win.String(),
		Options: opts,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// mustNew builds a Server for tests that drive the handler directly.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func wantErrKind(t *testing.T, data []byte, kind string) ErrorInfo {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v\n%s", err, data)
	}
	if eb.Error.Kind != kind {
		t.Fatalf("error kind = %q, want %q (%s)", eb.Error.Kind, kind, eb.Error.Message)
	}
	return eb.Error
}

func createSession(t *testing.T, base, name string, opts SessionOptions) {
	t.Helper()
	resp, data := do(t, "POST", base+"/v1/sessions", busPayload(t, name, 4, opts))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d: %s", name, resp.StatusCode, data)
	}
}

func TestServerBasicFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "bus", SessionOptions{})

	// Duplicate name conflicts.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "bus", 4, SessionOptions{}))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", resp.StatusCode)
	}
	wantErrKind(t, data, "conflict")

	// First analyze builds the engine.
	resp, data = do(t, "POST", ts.URL+"/v1/sessions/bus/analyze", AnalyzeRequest{Delay: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, data)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Rebuilt || ar.Noise == nil || ar.Noise.Stats.Victims == 0 || ar.Delay == nil {
		t.Fatalf("analyze response: rebuilt=%v noise=%v delay=%v", ar.Rebuilt, ar.Noise, ar.Delay)
	}
	if strings.Contains(string(data), "NaN") || strings.Contains(string(data), "Inf") {
		t.Fatal("non-finite value in response JSON")
	}

	// Incremental reanalyze on the persistent session.
	resp, data = do(t, "POST", ts.URL+"/v1/sessions/bus/reanalyze",
		ReanalyzeRequest{Padding: map[string]float64{"b1": 5 * units.Pico}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reanalyze: status %d: %s", resp.StatusCode, data)
	}
	var rr AnalyzeResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Rebuilt || rr.ChangedNets == 0 {
		t.Fatalf("reanalyze: rebuilt=%v changed=%d", rr.Rebuilt, rr.ChangedNets)
	}

	// Report replays the cached last analysis.
	resp, data = do(t, "GET", ts.URL+"/v1/sessions/bus/report", nil)
	if resp.StatusCode != http.StatusOK || !json.Valid(data) {
		t.Fatalf("report: status %d", resp.StatusCode)
	}

	// Info and list agree.
	resp, data = do(t, "GET", ts.URL+"/v1/sessions/bus", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info: status %d", resp.StatusCode)
	}
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Analyzed || info.Victims == 0 {
		t.Fatalf("info = %+v", info)
	}
	resp, data = do(t, "GET", ts.URL+"/v1/sessions", nil)
	var list []SessionInfo
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "bus" {
		t.Fatalf("list = %+v", list)
	}

	// Delete, then 404.
	resp, _ = do(t, "DELETE", ts.URL+"/v1/sessions/bus", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, data = do(t, "GET", ts.URL+"/v1/sessions/bus", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("info after delete: status %d", resp.StatusCode)
	}
	wantErrKind(t, data, "not_found")
}

func TestServerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Empty body.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	wantErrKind(t, data, "bad_request")
	// Parser errors surface with line numbers.
	resp, data = do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name:    "broken",
		Netlist: "module top\ngarbage here\n",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	ei := wantErrKind(t, data, "bad_request")
	if !strings.Contains(ei.Message, "line") {
		t.Fatalf("parser error without line number: %q", ei.Message)
	}
	// Bad padding values.
	createSession(t, ts.URL, "bus", SessionOptions{})
	resp, data = do(t, "POST", ts.URL+"/v1/sessions/bus/reanalyze",
		ReanalyzeRequest{Padding: map[string]float64{"b1": -1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative padding: status %d", resp.StatusCode)
	}
	wantErrKind(t, data, "bad_request")
	// Bad timeout query.
	resp, data = do(t, "POST", ts.URL+"/v1/sessions/bus/analyze?timeout=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d", resp.StatusCode)
	}
	wantErrKind(t, data, "bad_request")
}

func TestServerLintRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g, err := workload.Bus(workload.BusSpec{Bits: 4, Segs: 2, WindowWidth: 80 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Inject(workload.Defects{MultiDriven: true}); err != nil {
		t.Fatal(err)
	}
	var net, sp bytes.Buffer
	if err := netlist.Write(&net, g.Design); err != nil {
		t.Fatal(err)
	}
	if err := spef.Write(&sp, g.Paras); err != nil {
		t.Fatal(err)
	}
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name: "defective", Netlist: net.String(), SPEF: sp.String(),
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	ei := wantErrKind(t, data, "lint_rejected")
	if len(ei.Lint) == 0 {
		t.Fatal("422 without lint findings")
	}
	found := false
	for _, d := range ei.Lint {
		if d.Severity == "error" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error-severity finding in %+v", ei.Lint)
	}
}

// TestServerPanicFaultIsolation is the headline acceptance test: under
// panic fault injection one request fails with a structured error while a
// concurrent request on another session succeeds.
func TestServerPanicFaultIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	// FailFast turns the injected per-victim panic into an engine error for
	// the whole request — the hard-failure path.
	createSession(t, ts.URL, "bad", SessionOptions{InjectFault: "panic:*", FailFast: true})
	createSession(t, ts.URL, "good", SessionOptions{})

	var wg sync.WaitGroup
	type outcome struct {
		status int
		data   []byte
	}
	results := make([]outcome, 2)
	for i, name := range []string{"bad", "good"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := do(t, "POST", ts.URL+"/v1/sessions/"+name+"/analyze", nil)
			results[i] = outcome{resp.StatusCode, data}
		}()
	}
	wg.Wait()

	if results[0].status != http.StatusInternalServerError {
		t.Fatalf("bad session: status %d: %s", results[0].status, results[0].data)
	}
	ei := wantErrKind(t, results[0].data, "engine")
	if !strings.Contains(ei.Message, "panic") {
		t.Fatalf("engine error does not describe the panic: %q", ei.Message)
	}
	if results[1].status != http.StatusOK {
		t.Fatalf("good session: status %d: %s", results[1].status, results[1].data)
	}

	// The failed session is not wedged: fail-soft sessions on the same
	// design keep serving, and the bad session reports the failure again
	// (structured, not hung) on retry.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions/bad/analyze", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad session retry: status %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "engine")
}

// TestServerRecoverBarrier exercises the handler-level panic barrier
// directly: a panicking handler becomes a structured 500 and the session
// named by the route is marked suspect.
func TestServerRecoverBarrier(t *testing.T) {
	s := mustNew(t, Config{})
	ss := &session{name: "victim"}
	s.sessions["victim"] = ss

	h := s.barrier(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))
	req := httptest.NewRequest("POST", "/v1/sessions/victim/analyze", nil)
	req.SetPathValue("name", "victim")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", rec.Code)
	}
	ei := wantErrKind(t, rec.Body.Bytes(), "panic")
	if !strings.Contains(ei.Message, "handler exploded") || ei.Session != "victim" {
		t.Fatalf("error = %+v", ei)
	}
	if !ss.info(time.Now()).Suspect {
		t.Fatal("session not marked suspect after panic")
	}
}

// TestServerAdmissionShedding pins bounded admission: with one worker and
// a queue of one, a burst of slow requests sheds the overflow with 429 and
// a Retry-After hint instead of queueing unboundedly.
func TestServerAdmissionShedding(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	createSession(t, ts.URL, "slow", SessionOptions{InjectFault: "sleep:*"})

	const burst = 6
	statuses := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	for i := range statuses {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/slow/analyze", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}()
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] != "2" {
				t.Fatalf("shed response Retry-After = %q, want 2", retryAfter[i])
			}
		default:
			t.Fatalf("unexpected status %d", st)
		}
	}
	// One runs, one queues, the rest shed. Exact counts depend on arrival
	// order, but with 6 requests against capacity 2 at least 4 must shed
	// and at least 1 must succeed.
	if ok < 1 || shed < 4 {
		t.Fatalf("ok=%d shed=%d, want >=1 ok and >=4 shed (statuses %v)", ok, shed, statuses)
	}
}

// TestServerDeadline pins deadline propagation: a client timeout tighter
// than the work cancels the engine run and maps to a structured 503.
func TestServerDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "slow", SessionOptions{InjectFault: "sleep:*"})
	resp, data := do(t, "POST", ts.URL+"/v1/sessions/slow/analyze?timeout=20ms", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "deadline")
}

// TestServerBreaker pins the degradation circuit breaker: consecutive
// fail-soft degraded results trip the session to 503 until the cooldown
// elapses, after which it goes half-open.
func TestServerBreaker(t *testing.T) {
	clock := time.Now()
	cfg := Config{BreakerTrips: 2, BreakerCooldown: 10 * time.Second}
	cfg.now = func() time.Time { return clock }
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Fail-soft (default): the injected panic degrades one net per run,
	// returning a 200 with DegradedNets > 0 — exactly what the breaker
	// watches.
	createSession(t, ts.URL, "flaky", SessionOptions{InjectFault: "panic:b1"})

	for i := 0; i < 2; i++ {
		resp, data := do(t, "POST", ts.URL+"/v1/sessions/flaky/analyze", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded analyze %d: status %d: %s", i, resp.StatusCode, data)
		}
		var ar AnalyzeResponse
		if err := json.Unmarshal(data, &ar); err != nil {
			t.Fatal(err)
		}
		if ar.Noise.Stats.DegradedNets == 0 {
			t.Fatal("expected a degraded result")
		}
	}

	// Third request: breaker open.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions/flaky/analyze", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "breaker_open")
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}

	// Info reflects the open breaker.
	_, data = do(t, "GET", ts.URL+"/v1/sessions/flaky", nil)
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Breaker.Open || info.Breaker.ConsecutiveDegraded < 2 {
		t.Fatalf("breaker info = %+v", info.Breaker)
	}

	// After the cooldown the breaker goes half-open: the probe request is
	// admitted (and, still degraded, re-trips it).
	clock = clock.Add(11 * time.Second)
	resp, data = do(t, "POST", ts.URL+"/v1/sessions/flaky/analyze", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: status %d: %s", resp.StatusCode, data)
	}
	resp, data = do(t, "POST", ts.URL+"/v1/sessions/flaky/analyze", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("re-trip: status %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "breaker_open")
}

// TestServerLRUEviction pins the session cap: creating past MaxSessions
// evicts the least-recently-used idle session.
func TestServerLRUEviction(t *testing.T) {
	clock := time.Now()
	cfg := Config{MaxSessions: 2}
	cfg.now = func() time.Time { clock = clock.Add(time.Second); return clock }
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	createSession(t, ts.URL, "a", SessionOptions{})
	createSession(t, ts.URL, "b", SessionOptions{})
	// Touch "a" so "b" is the LRU.
	if resp, _ := do(t, "GET", ts.URL+"/v1/sessions/a", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("touch a")
	}
	createSession(t, ts.URL, "c", SessionOptions{})

	resp, data := do(t, "GET", ts.URL+"/v1/sessions/b", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("LRU session b should be evicted: status %d: %s", resp.StatusCode, data)
	}
	for _, name := range []string{"a", "c"} {
		if resp, _ := do(t, "GET", ts.URL+"/v1/sessions/"+name, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s should survive", name)
		}
	}
}

// TestServerSessionLimitBusy pins the no-evictable-session case: when
// every loaded session has requests in flight, a create is shed, not
// blocked.
func TestServerSessionLimitBusy(t *testing.T) {
	s := mustNew(t, Config{MaxSessions: 1})
	if einfo := s.insert(&session{name: "busy"}); einfo != nil {
		t.Fatalf("insert: %+v", einfo)
	}
	ss := s.retain("busy") // pin it the way an in-flight request does
	if ss == nil {
		t.Fatal("retain failed")
	}
	einfo := s.insert(&session{name: "second"})
	if einfo == nil || einfo.Kind != "session_limit" {
		t.Fatalf("insert while busy = %+v, want session_limit", einfo)
	}
	// Once the request releases its pin the session is evictable again.
	s.releaseRef(ss)
	if einfo := s.insert(&session{name: "third"}); einfo != nil {
		t.Fatalf("insert after release: %+v", einfo)
	}
}

// TestServerDeleteBusySession pins the retain/delete interlock: a session
// with a request in flight refuses deletion with a retryable 409, so the
// request cannot complete against an orphaned session whose cached report
// would be unreachable.
func TestServerDeleteBusySession(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "bus", SessionOptions{})
	ss := s.retain("bus") // pin it the way an in-flight request does
	resp, data := do(t, "DELETE", ts.URL+"/v1/sessions/bus", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete busy session: status %d: %s", resp.StatusCode, data)
	}
	wantErrKind(t, data, "busy")
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("busy 409 without Retry-After")
	}
	s.releaseRef(ss)
	if resp, _ := do(t, "DELETE", ts.URL+"/v1/sessions/bus", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete after release: status %d", resp.StatusCode)
	}
}

// TestServerAnalysisPanicReleasesSession pins the panic path of the
// serialized engine section: a panic inside the analysis work must release
// the session's busy slot on the way out, or every later request to the
// session would block forever waiting for it.
func TestServerAnalysisPanicReleasesSession(t *testing.T) {
	s := mustNew(t, Config{MaxRequestTimeout: 100 * time.Millisecond})
	if einfo := s.insert(&session{name: "p"}); einfo != nil {
		t.Fatalf("insert: %+v", einfo)
	}
	run := func(work func(context.Context, *session) (*AnalyzeResponse, error)) *httptest.ResponseRecorder {
		h := s.barrier(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.analysis(w, r, work)
		}))
		req := httptest.NewRequest("POST", "/v1/sessions/p/analyze", nil)
		req.SetPathValue("name", "p")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	rec := run(func(context.Context, *session) (*AnalyzeResponse, error) { panic("work exploded") })
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking analysis: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	wantErrKind(t, rec.Body.Bytes(), "panic")

	// The busy slot and the eviction pin must both be free again: a second
	// analysis reaches its work function (engine 500) instead of timing
	// out against a wedged session (deadline 503).
	rec = run(func(context.Context, *session) (*AnalyzeResponse, error) { return nil, errors.New("engine says no") })
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("post-panic analysis: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	wantErrKind(t, rec.Body.Bytes(), "engine")
	s.mu.Lock()
	refs := s.sessions["p"].refs
	s.mu.Unlock()
	if refs != 0 {
		t.Fatalf("refs = %d after both requests finished, want 0", refs)
	}
}

// TestServerSessionWaitRespectsDeadline pins cancellable per-session
// serialization: a request queued behind a long analysis of the same
// session sheds at its own deadline instead of pinning a worker
// uncancellably until the session frees.
func TestServerSessionWaitRespectsDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4})
	// A 16-bit bus with per-net sleeps is hundreds of ms of serial work.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "slow", 16, SessionOptions{InjectFault: "sleep:*"}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	ss := s.lookup("slow")

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/sessions/slow/analyze", "application/json", nil)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(ss.busy) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never took the session")
		}
		time.Sleep(time.Millisecond)
	}

	resp, data = do(t, "POST", ts.URL+"/v1/sessions/slow/analyze?timeout=50ms", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d: %s", resp.StatusCode, data)
	}
	ei := wantErrKind(t, data, "deadline")
	if !strings.Contains(ei.Message, "waiting for the session") {
		t.Fatalf("deadline error = %q, want the session-wait message", ei.Message)
	}
	<-done
}

// TestSessionBreakerHalfOpenSingleProbe pins half-open arbitration: past
// the cooldown exactly one request is admitted as the probe, concurrent
// requests keep shedding until its outcome lands, a degraded probe
// re-trips immediately, and a clean probe closes the breaker for everyone.
func TestSessionBreakerHalfOpenSingleProbe(t *testing.T) {
	ss := &session{name: "x"}
	const trips = 2
	cooldown := 10 * time.Second
	now := time.Now()
	ss.recordOutcome(true, now, trips, cooldown)
	ss.recordOutcome(true, now, trips, cooldown)
	if _, _, open := ss.breakerAdmit(now.Add(time.Second), time.Second); !open {
		t.Fatal("breaker should be open during the cooldown")
	}

	half := now.Add(cooldown + time.Second)
	if _, probe, open := ss.breakerAdmit(half, time.Second); open || !probe {
		t.Fatalf("first half-open caller: probe=%v open=%v, want the single probe", probe, open)
	}
	if retry, probe, open := ss.breakerAdmit(half, time.Second); !open || probe || retry != time.Second {
		t.Fatalf("second half-open caller: retry=%v probe=%v open=%v, want shed with hint", retry, probe, open)
	}

	// One degraded probe re-trips immediately — not after `trips` more.
	ss.recordOutcome(true, half, trips, cooldown)
	ss.probeRelease()
	if _, _, open := ss.breakerAdmit(half.Add(time.Second), time.Second); !open {
		t.Fatal("degraded probe must re-trip the breaker")
	}

	half2 := half.Add(cooldown + time.Second)
	if _, probe, open := ss.breakerAdmit(half2, time.Second); open || !probe {
		t.Fatal("second probe not admitted after the re-trip cooldown")
	}
	ss.recordOutcome(false, half2, trips, cooldown)
	ss.probeRelease()
	if _, probe, open := ss.breakerAdmit(half2, time.Second); open || probe {
		t.Fatal("clean probe must close the breaker")
	}
}

// TestServerDrainClean: SIGTERM semantics — in-flight work finishes within
// the budget, new work is refused, readiness flips, Drain reports clean.
func TestServerDrainClean(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "slow", SessionOptions{InjectFault: "sleep:*"})

	started := make(chan struct{})
	result := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/slow/analyze", nil)
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			result <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		result <- resp.StatusCode
	}()
	<-started
	// Wait for the request to actually be in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflightN.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	if !s.Drain(30 * time.Second) {
		t.Fatal("drain with generous budget should be clean")
	}
	if st := <-result; st != http.StatusOK {
		t.Fatalf("in-flight request during clean drain: status %d", st)
	}

	// Draining server refuses new work but stays live.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions/slow/analyze", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain analyze: status %d", resp.StatusCode)
	}
	wantErrKind(t, data, "draining")
	if resp, _ := do(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("healthz must stay 200 while draining")
	}
	resp, data = do(t, "GET", ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d", resp.StatusCode)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(data, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "draining" {
		t.Fatalf("readyz status = %q", ready.Status)
	}
}

// TestServerDrainForced: when in-flight work exceeds the budget, Drain
// cancels it through the request context and reports a forced drain; the
// cancelled request still gets a structured response.
func TestServerDrainForced(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// A 16-bit bus with per-net sleeps is hundreds of ms of work — far
	// beyond the 10ms budget.
	resp, data := do(t, "POST", ts.URL+"/v1/sessions", busPayload(t, "slow", 16, SessionOptions{InjectFault: "sleep:*"}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}

	result := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sessions/slow/analyze", "application/json", nil)
		if err != nil {
			result <- struct {
				status int
				body   []byte
			}{-1, nil}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		result <- struct {
			status int
			body   []byte
		}{resp.StatusCode, body}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.inflightN.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	if s.Drain(10 * time.Millisecond) {
		t.Fatal("drain should report forced, not clean")
	}
	r := <-result
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("cancelled request: status %d: %s", r.status, r.body)
	}
	ei := wantErrKind(t, r.body, "canceled")
	if ei.Session != "slow" {
		t.Fatalf("cancelled error = %+v", ei)
	}
}

// TestServerFailSoftDegradedResponse: the default fail-soft path returns a
// 200 whose body carries the degradation report — per-victim panics do not
// fail the query.
func TestServerFailSoftDegradedResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, "flaky", SessionOptions{InjectFault: "panic:b1"})
	resp, data := do(t, "POST", ts.URL+"/v1/sessions/flaky/analyze", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Noise.Stats.DegradedNets != 1 || len(ar.Noise.Degradations) != 1 {
		t.Fatalf("degradations = %+v (stats %+v)", ar.Noise.Degradations, ar.Noise.Stats)
	}
	d := ar.Noise.Degradations[0]
	if d.Net != "b1" || !d.Degraded || !strings.Contains(d.Error, "panic") {
		t.Fatalf("degradation = %+v", d)
	}
}

var _ = fmt.Sprintf // keep fmt linked for debug edits

// readySnapshot and listSnapshot hold the registry lock with a deferred
// unlock (a panic mid-probe must not wedge every later request — the
// session-wedge incident class) and return name-sorted results, so
// /readyz and the session list are byte-stable regardless of map
// iteration order. Enforced statically by deferrelease and mapdeterm;
// this pins the runtime behavior.
func TestSnapshotsSortedAndDeterministic(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	future := time.Now().Add(time.Hour)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		s.sessions[name] = &session{name: name, trippedUntil: future}
	}
	for i := 0; i < 5; i++ {
		n, open := s.readySnapshot()
		if n != 3 || !slicesEqual(open, []string{"alpha", "mid", "zeta"}) {
			t.Fatalf("readySnapshot = %d %v, want 3 sorted names", n, open)
		}
		infos, loaded := s.listSnapshot()
		if len(infos) != 3 || len(loaded) != 3 {
			t.Fatalf("listSnapshot = %d infos, %d loaded", len(infos), len(loaded))
		}
		for j, want := range []string{"alpha", "mid", "zeta"} {
			if infos[j].Name != want {
				t.Fatalf("infos[%d] = %q, want %q", j, infos[j].Name, want)
			}
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
