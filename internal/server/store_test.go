package server

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/workload"
)

// openTestStore opens a store on dir with an optional fault spec,
// failing the test on the structurally-unusable-directory path.
func openTestStore(t *testing.T, dir, faultSpec string) (*Store, *report.RecoveryJSON) {
	t.Helper()
	var adapter *storeFaultAdapter
	if faultSpec != "" {
		faults, err := workload.ParseStoreFaults(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		adapter = &storeFaultAdapter{
			BeforeWrite:  faults.BeforeWrite,
			BeforeSync:   faults.BeforeSync,
			BeforeRename: faults.BeforeRename,
		}
	}
	st, rep, err := OpenStore(dir, adapter, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, rep
}

func storeCreate(t *testing.T, st *Store, name string) {
	t.Helper()
	if err := st.Create(&CreateSessionRequest{Name: name, Netlist: "module " + name + "\n"}); err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
}

func wantNames(t *testing.T, st *Store, want ...string) {
	t.Helper()
	got := st.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

// TestStoreRoundtrip: acknowledged lifecycle events survive a close and
// reopen — creates come back with their payload and padding, deletes
// stay deleted.
func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, "")
	storeCreate(t, st, "a")
	storeCreate(t, st, "b")
	storeCreate(t, st, "c")
	if err := st.Padding("b", map[string]float64{"n1": 3e-12, "n2": 5e-12}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("c"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rep := openTestStore(t, dir, "")
	wantNames(t, st2, "a", "b")
	if len(rep.Quarantined) != 0 {
		t.Fatalf("clean reopen quarantined %v", rep.Quarantined)
	}
	sp := st2.Spec("b")
	if sp == nil || sp.Create.Netlist != "module b\n" {
		t.Fatalf("spec b = %+v", sp)
	}
	if sp.Padding["n1"] != 3e-12 || sp.Padding["n2"] != 5e-12 {
		t.Fatalf("padding = %v", sp.Padding)
	}
	if st2.Spec("c") != nil {
		t.Fatal("deleted session resurrected")
	}
}

// TestStoreCompaction: the journal folds into snapshots and a fresh
// generation without changing the recovered state, and stale journals
// disappear.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, nil, 2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		storeCreate(t, st, name)
	}
	if err := st.Delete("d"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	journals := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			journals++
		}
	}
	if journals != 1 {
		t.Fatalf("%d journal files after compaction, want 1", journals)
	}

	st2, rep := openTestStore(t, dir, "")
	wantNames(t, st2, "a", "b", "c", "e")
	if rep.Snapshots == 0 {
		t.Fatal("no snapshots were loaded after compaction")
	}
	if !rep.Compacted {
		t.Fatal("boot did not compact")
	}
}

// TestStoreFailedAppendKeepsTailReplayable is the regression test for the
// torn-tail repair: an append that fails mid-frame must not hide later,
// successfully acknowledged records from replay.
func TestStoreFailedAppendKeepsTailReplayable(t *testing.T) {
	for _, spec := range []string{"torn:append:2", "enospc:append:2", "syncerr:append:2"} {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openTestStore(t, dir, spec)
			storeCreate(t, st, "a")
			if err := st.Create(&CreateSessionRequest{Name: "b", Netlist: "module b\n"}); err == nil {
				t.Fatal("injected fault did not fail the create")
			}
			// The failed create must not be acknowledged in memory either.
			if st.Spec("b") != nil {
				t.Fatal("failed create landed in the spec index")
			}
			// Later creates append after the repaired tail.
			storeCreate(t, st, "c")
			// Crash (no Close): reopen replays.
			st2, _ := openTestStore(t, dir, "")
			wantNames(t, st2, "a", "c")
		})
	}
}

// TestStoreCrashAfterTornAppend: a torn frame at the very tail (crash
// mid-append, no repair ran) is the expected crash signature — replay
// keeps everything before it and boots.
func TestStoreCrashAfterTornAppend(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, "")
	storeCreate(t, st, "a")
	storeCreate(t, st, "b")
	st.Close()
	// Simulate the crash: chop the tail of the last appended frame (b's).
	path := activeJournal(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < frameHeaderLen+2 {
		t.Fatalf("journal too short to tear: %d bytes", len(data))
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	st3, rep := openTestStore(t, dir, "")
	if !rep.TornTail {
		t.Fatal("torn tail not reported")
	}
	// b's record was the torn one; a survives.
	wantNames(t, st3, "a")
	if len(rep.Quarantined) != 0 {
		t.Fatalf("a torn tail is a crash signature, not corruption: %v", rep.Quarantined)
	}
}

// activeJournal finds the single journal file on disk without reopening
// the store (an open would compact and empty it).
func activeJournal(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var found string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			if found != "" {
				t.Fatalf("multiple journals: %s and %s", found, e.Name())
			}
			found = filepath.Join(dir, e.Name())
		}
	}
	if found == "" {
		t.Fatal("no journal file on disk")
	}
	return found
}

// TestStoreCrashBetweenTempAndRename: a stranded snapshot temp file (the
// crash-between-temp-and-rename window) is swept on boot, and the state
// recovers from the journal.
func TestStoreCrashBetweenTempAndRename(t *testing.T) {
	dir := t.TempDir()
	// compactEvery=1 compacts after the first create; the crashrename
	// fault fails that compaction's snapshot write after the temp file is
	// fully on disk (write #1 is the boot compaction's manifest, #2 the
	// snapshot).
	var adapter *storeFaultAdapter
	faults, err := workload.ParseStoreFaults("crashrename:write:2")
	if err != nil {
		t.Fatal(err)
	}
	adapter = &storeFaultAdapter{BeforeWrite: faults.BeforeWrite, BeforeSync: faults.BeforeSync, BeforeRename: faults.BeforeRename}
	st, _, err := OpenStore(dir, adapter, 1, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	// The create itself succeeds — compaction is an optimization and its
	// failure must not fail the lifecycle event.
	storeCreate(t, st, "a")
	stranded := 0
	entries, err := os.ReadDir(filepath.Join(dir, sessionsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			stranded++
		}
	}
	if stranded == 0 {
		t.Fatal("crashrename did not strand a temp file")
	}
	// Crash; reopen without faults.
	st2, _ := openTestStore(t, dir, "")
	wantNames(t, st2, "a")
	entries, err = os.ReadDir(filepath.Join(dir, sessionsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stranded temp file %s survived the boot sweep", e.Name())
		}
	}
}

// TestStoreJournalCorruptionQuarantined: a CRC mismatch in the middle of
// the journal (bit rot, not a crash) quarantines the unreadable region
// with a reason instead of refusing the boot; records before it replay.
func TestStoreJournalCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, "")
	storeCreate(t, st, "a")
	storeCreate(t, st, "b")
	st.Close()

	path := activeJournal(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the second frame: the first frame's
	// length names the boundary.
	n1 := binary.LittleEndian.Uint32(data[0:4])
	off := int(frameHeaderLen+n1) + frameHeaderLen + 2
	if off >= len(data) {
		t.Fatalf("journal layout: %d bytes, second payload at %d", len(data), off)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rep := openTestStore(t, dir, "")
	wantNames(t, st2, "a")
	if len(rep.Quarantined) == 0 {
		t.Fatal("corruption was not quarantined")
	}
	found := false
	for _, q := range rep.Quarantined {
		if q.Source == "journal" && strings.Contains(q.Reason, "CRC") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no CRC quarantine entry: %+v", rep.Quarantined)
	}
	// The boot compaction folds the healthy state into a new generation:
	// the next boot is clean.
	st2.Close()
	st3, rep3 := openTestStore(t, dir, "")
	wantNames(t, st3, "a")
	if len(rep3.Quarantined) != 0 {
		t.Fatalf("quarantined garbage resurfaced: %+v", rep3.Quarantined)
	}
}

// TestStoreSnapshotCorruptionQuarantined: one rotten snapshot loses one
// session — with a quarantine trail — not the directory.
func TestStoreSnapshotCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, nil, 1, t.Logf) // compact after every record
	if err != nil {
		t.Fatal(err)
	}
	storeCreate(t, st, "healthy")
	storeCreate(t, st, "rotten")
	st.Close()

	snap := filepath.Join(dir, sessionsDir, snapName("rotten"))
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rep := openTestStore(t, dir, "")
	wantNames(t, st2, "healthy")
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Source != "snapshot" {
		t.Fatalf("quarantine = %+v", rep.Quarantined)
	}
	// The quarantined bytes and their reason sidecar are on disk for the
	// operator.
	qfile := filepath.Join(dir, rep.Quarantined[0].File)
	if _, err := os.Stat(qfile); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(qfile + ".reason.json"); err != nil {
		t.Fatalf("quarantine reason sidecar missing: %v", err)
	}
}

// TestStoreManifestCorruptionFallsBack: an unreadable manifest is
// quarantined and the generation is recovered from the journal files on
// disk.
func TestStoreManifestCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, "")
	storeCreate(t, st, "a")
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rep := openTestStore(t, dir, "")
	wantNames(t, st2, "a")
	found := false
	for _, q := range rep.Quarantined {
		if q.Source == "manifest" {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest corruption not quarantined: %+v", rep.Quarantined)
	}
}

// TestStoreTombstoneOutlivesLostUnlink: a delete whose snapshot unlink is
// lost to a crash still deletes — the replayed tombstone beats the stale
// snapshot.
func TestStoreTombstoneOutlivesLostUnlink(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, nil, 1, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	storeCreate(t, st, "a") // compacted: snapshot on disk
	st.Close()
	snap := filepath.Join(dir, sessionsDir, snapName("a"))
	saved, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Reopen with compaction disabled-ish (large interval) so the
	// tombstone stays in the journal, delete, then "crash" and undo the
	// snapshot unlink as a crash would.
	st2, _, err := OpenStore(dir, nil, 1000, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Delete("a"); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if err := os.WriteFile(snap, saved, 0o644); err != nil {
		t.Fatal(err)
	}

	st3, _ := openTestStore(t, dir, "")
	if st3.Spec("a") != nil {
		t.Fatal("tombstoned session resurrected from a stale snapshot")
	}
}

// TestStoreQuarantineSpec: quarantining an unreplayable spec tombstones
// it durably and leaves the bytes + reason in quarantine/.
func TestStoreQuarantineSpec(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, "")
	storeCreate(t, st, "bad")
	entry := st.QuarantineSpec("bad", "sources no longer build")
	if entry == nil || entry.Session != "bad" {
		t.Fatalf("entry = %+v", entry)
	}
	if st.Spec("bad") != nil {
		t.Fatal("quarantined spec still listed")
	}
	st.Close()
	st2, _ := openTestStore(t, dir, "")
	if st2.Spec("bad") != nil {
		t.Fatal("quarantined spec resurrected on reboot")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, snapName("bad")+".spec")); err != nil {
		t.Fatalf("quarantined spec bytes missing: %v", err)
	}
}
