package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/shard"
)

// Async jobs: POST /v1/jobs accepts a batch-analysis work order and
// returns 202 once the spec is journaled; a bounded worker pool
// (separate from the interactive admission gate, so batch work and
// interactive requests cannot starve each other) executes it with
// retry, per-attempt deadlines, and poison-job quarantine. The queue
// machinery lives in internal/jobs; this file owns the HTTP surface and
// the executor that maps job specs onto sessions and engines.

// SweepResult is the result payload of a sweep job: the session's
// design analyzed once per scenario point.
type SweepResult struct {
	Session string             `json:"session"`
	Points  []SweepPointResult `json:"points"`
}

// SweepPointResult is one sweep scenario's outcome.
type SweepPointResult struct {
	// Mode and Threshold echo the effective analysis knobs of this point
	// (the session's own values where the point didn't override).
	Mode      string  `json:"mode"`
	Threshold float64 `json:"threshold"`
	// Noise is the point's full analysis report.
	Noise *report.ResultJSON `json:"noise"`
}

func (s *Server) jobCheckpointDir() string {
	return filepath.Join(s.cfg.DataDir, "jobs", "checkpoints")
}

// jobFinal clears a terminal job's iterate checkpoint — the checkpoint
// outlives crashes (that is its job) but must not outlive the job.
func (s *Server) jobFinal(id string, state jobs.State) {
	if s.cfg.DataDir == "" {
		return
	}
	ck := &shard.FileCheckpointer{Dir: s.jobCheckpointDir()}
	if err := ck.Clear(id); err != nil {
		s.cfg.Logf("job %s: clearing checkpoint: %v", id, err)
	}
}

// execJob is the jobs.Executor: one attempt of one job, run by a job
// worker. It pins the session (reviving from the durable store when
// needed), serializes on the session's busy slot against interactive
// requests, and routes by job type. Deterministic failures — unknown
// session, unreplayable spec — are marked Permanent so the manager
// fails fast instead of burning the retry budget.
func (s *Server) execJob(ctx context.Context, id string, spec *jobs.Spec, attempt int) (json.RawMessage, bool, error) {
	start := time.Now()
	defer func() { s.histJobRun.Observe(time.Since(start).Seconds()) }()
	ss, einfo := s.retainOrRevive(ctx, spec.Session)
	if einfo != nil {
		if einfo.Kind == "budget" || einfo.Kind == "session_limit" || einfo.Kind == "canceled" {
			// The design didn't fit the memory budget, the session
			// registry was full of busy sessions, or this attempt's
			// context expired mid-revive; all transient, so let the
			// manager's retry/backoff absorb it instead of failing the
			// job permanently.
			return nil, false, errors.New(einfo.Message)
		}
		return nil, false, jobs.Permanent(errors.New(einfo.Message))
	}
	if ss == nil {
		return nil, false, jobs.Permanent(fmt.Errorf("no session %q", spec.Session))
	}
	defer s.releaseRef(ss)
	if !ss.acquire(ctx, s.forceCtx) {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		return nil, false, fmt.Errorf("drain interrupted job %s waiting for session %q", id, spec.Session)
	}
	resp, result, err := func() (*AnalyzeResponse, json.RawMessage, error) {
		// Release under defer: a panicking engine must not wedge the
		// session (the manager's recover barrier handles the panic
		// itself).
		defer ss.release()
		return s.runJobWork(ctx, ss, id, spec)
	}()
	if err != nil {
		// Engine failures feed the session breaker exactly like
		// interactive analyses; cancellation does not.
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			ss.recordOutcome(true, s.cfg.now(), s.cfg.BreakerTrips, s.cfg.BreakerCooldown)
		}
		return nil, false, err
	}
	degraded := false
	if resp != nil && resp.Noise != nil {
		degraded = resp.Noise.Stats.DegradedNets > 0
		ss.recordOutcome(degraded, s.cfg.now(), s.cfg.BreakerTrips, s.cfg.BreakerCooldown)
	}
	if resp != nil {
		body, merr := json.Marshal(resp)
		if merr != nil {
			return nil, degraded, fmt.Errorf("encoding job result: %w", merr)
		}
		// The job's analysis becomes the session's cached report, the
		// same as an interactive run — GET report serves it.
		ss.recordResult(resp, body)
		return body, degraded, nil
	}
	return result, degraded, nil
}

// runJobWork routes one attempt by job type. Analyze-shaped work
// returns an *AnalyzeResponse (cached on the session); sweep returns
// its own payload.
func (s *Server) runJobWork(ctx context.Context, ss *session, id string, spec *jobs.Spec) (*AnalyzeResponse, json.RawMessage, error) {
	switch spec.Type {
	case "analyze":
		eng, rebuilt, err := ss.ensureEngine(ctx)
		if err != nil {
			return nil, nil, err
		}
		resp := &AnalyzeResponse{Session: ss.name, Noise: report.BuildJSON(eng.Noise()), Rebuilt: rebuilt}
		if spec.Delay {
			resp.Delay = report.BuildDelayJSON(eng.Delay())
		}
		return resp, nil, nil
	case "reanalyze":
		eng, rebuilt, err := ss.ensureEngine(ctx)
		if err != nil {
			return nil, nil, err
		}
		res, changed, err := eng.Reanalyze(ctx, spec.Padding)
		if err != nil {
			return nil, nil, err
		}
		if changed > 0 {
			ss.padding = eng.Padding()
			s.persistPadding(ss)
		}
		resp := &AnalyzeResponse{Session: ss.name, Noise: report.BuildJSON(res), ChangedNets: changed, Rebuilt: rebuilt}
		if spec.Delay {
			resp.Delay = report.BuildDelayJSON(eng.Delay())
		}
		return resp, nil, nil
	case "iterate":
		resp, err := s.jobIterate(ctx, ss, id, spec)
		return resp, nil, err
	case "sweep":
		result, err := s.jobSweep(ctx, ss, spec)
		return nil, result, err
	}
	return nil, nil, jobs.Permanent(fmt.Errorf("unknown job type %q", spec.Type))
}

// jobIterate runs an iterate job through the shard coordinator even on
// the single-process path (one in-process worker): shard.Run is
// byte-identical to the direct iterative analysis when healthy, and it
// is what grants round-boundary checkpoints — the thing that makes a
// SIGKILL'd iterate job resume mid-fixpoint instead of starting over.
// The checkpoint token is the job ID, unique across restarts.
func (s *Server) jobIterate(ctx context.Context, ss *session, id string, spec *jobs.Spec) (*AnalyzeResponse, error) {
	workers := s.healthyWorkers()
	distributed := !spec.Local && len(workers) > 0 && ss.spec != nil
	shards := spec.Shards
	if !distributed {
		workers = []shard.Worker{shard.NewInProc("local", func(context.Context) (*bind.Design, error) {
			return ss.b, nil
		}, ss.opts)}
		shards = 1
	} else if shards <= 0 {
		shards = s.cfg.Shards
		if shards <= 0 {
			shards = len(workers)
		}
	}
	cfg := shard.Config{
		B:               ss.b,
		Opts:            ss.opts,
		Workers:         workers,
		Shards:          shards,
		Token:           id,
		MaxRounds:       spec.MaxRounds,
		DispatchTimeout: s.cfg.MaxRequestTimeout,
		Logf:            s.cfg.Logf,
	}
	if distributed {
		cfg.Design = designSpecOf(ss.spec)
	}
	if s.store != nil {
		cfg.Checkpointer = &shard.FileCheckpointer{Dir: s.jobCheckpointDir()}
	}
	out, err := shard.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	resp := &AnalyzeResponse{
		Session: ss.name,
		Noise:   report.BuildJSON(out.Noise),
		Iterate: &IterateInfo{
			Rounds:          out.Rounds,
			Converged:       out.Converged,
			Diverging:       out.Diverging,
			DivergeReason:   out.DivergeReason,
			Distributed:     distributed,
			Workers:         len(workers),
			Shards:          shards,
			Reassigns:       out.Reassigns,
			AbandonedShards: out.AbandonedShards,
			Resumed:         out.Resumed,
		},
	}
	if spec.Delay {
		resp.Delay = report.BuildDelayJSON(out.Delay)
	}
	return resp, nil
}

// jobSweep analyzes the session's design once per scenario point, each
// under the point's mode/threshold overrides.
func (s *Server) jobSweep(ctx context.Context, ss *session, spec *jobs.Spec) (json.RawMessage, error) {
	out := SweepResult{Session: ss.name, Points: make([]SweepPointResult, 0, len(spec.Sweep))}
	for _, pt := range spec.Sweep {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		opts := ss.opts
		modeName := pt.Mode
		if modeName != "" {
			mode, err := parseMode(modeName)
			if err != nil {
				return nil, jobs.Permanent(err)
			}
			opts.Mode = mode
		} else {
			modeName = modeString(opts.Mode)
		}
		if pt.Threshold > 0 {
			opts.FilterThreshold = pt.Threshold
		}
		res, err := core.AnalyzeCtx(ctx, ss.b, opts)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, SweepPointResult{
			Mode:      modeName,
			Threshold: opts.FilterThreshold,
			Noise:     report.BuildJSON(res),
		})
	}
	body, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("encoding sweep result: %w", err)
	}
	return body, nil
}

func modeString(m core.Mode) string {
	switch m {
	case core.ModeAllAggressors:
		return "all"
	case core.ModeTimingWindows:
		return "timing"
	}
	return "noise"
}

// --- HTTP surface -----------------------------------------------------

// handleSubmitJob is POST /v1/jobs: validate, journal, 202. The 202 is
// written only after the spec's journal append fsyncs; a full queue
// sheds with 429 and a sick disk refuses with 503 storage — in both
// cases nothing was acknowledged and nothing is owed.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := decodeBody(r.Body, &spec); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error()}, 0)
		return
	}
	// The transport-level tenant wins over the body's: proxies stamp the
	// header per caller, and a spec replayed from a template must not
	// smuggle another tenant's identity.
	if t := tenantOf(r); t != "" {
		spec.Tenant = t
	}
	snap, err := s.jobs.Submit(&spec)
	if err != nil {
		var se *jobs.StorageError
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.writeErr(w, http.StatusTooManyRequests, ErrorInfo{
				Kind:    "overloaded",
				Message: fmt.Sprintf("job queue of %d is full", s.cfg.JobQueueDepth),
				Session: spec.Session,
			}, s.cfg.RetryAfter)
		case errors.Is(err, jobs.ErrDraining):
			// Retry-After points the client at this server's replacement:
			// a drain precedes either a restart or a peer taking over.
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind: "draining", Message: "server is draining; no new jobs accepted",
			}, s.cfg.RetryAfter)
		case errors.As(err, &se):
			s.storeDegraded.Store(true)
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind:    "storage",
				Message: fmt.Sprintf("job not accepted: journal append failed: %v; retry once storage recovers", se.Err),
				Session: spec.Session,
			}, s.cfg.RetryAfter)
		default:
			s.writeErr(w, http.StatusBadRequest, ErrorInfo{Kind: "bad_request", Message: err.Error(), Session: spec.Session}, 0)
		}
		return
	}
	s.writeJSON(w, http.StatusAccepted, snap)
}

// handleListJobs is GET /v1/jobs, optionally filtered with ?state=:
// one of the lifecycle states, or the pseudo-state "quarantined"
// (failed jobs parked as poison — the ones an operator triages first).
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	all := s.jobs.List()
	state := r.URL.Query().Get("state")
	if state == "" {
		s.writeJSON(w, http.StatusOK, JobsResponse{Jobs: all})
		return
	}
	switch state {
	case "queued", "running", "done", "failed", "canceled", "quarantined":
	default:
		s.writeErr(w, http.StatusBadRequest, ErrorInfo{
			Kind:    "bad_request",
			Message: fmt.Sprintf("unknown state filter %q (want queued|running|done|failed|canceled|quarantined)", state),
		}, 0)
		return
	}
	filtered := make([]report.JobJSON, 0, len(all))
	for _, j := range all {
		if state == "quarantined" {
			if j.Quarantined {
				filtered = append(filtered, j)
			}
		} else if j.State == state {
			filtered = append(filtered, j)
		}
	}
	s.writeJSON(w, http.StatusOK, JobsResponse{Jobs: filtered})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.jobs.Get(id)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, ErrorInfo{
			Kind: "not_found", Message: fmt.Sprintf("no job %q", id),
		}, 0)
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// handleCancelJob is DELETE /v1/jobs/{id}. The cancel intent is
// journaled before the response: 200 when the job is already terminal
// in the canceled state, 202 while a running attempt unwinds, 409 for
// done/failed jobs (there is nothing left to cancel).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.jobs.Cancel(id)
	if err != nil {
		var se *jobs.StorageError
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			s.writeErr(w, http.StatusNotFound, ErrorInfo{
				Kind: "not_found", Message: fmt.Sprintf("no job %q", id),
			}, 0)
		case errors.Is(err, jobs.ErrTerminal):
			s.writeErr(w, http.StatusConflict, ErrorInfo{
				Kind: "conflict", Message: fmt.Sprintf("job %q already finished as %s", id, snap.State),
			}, 0)
		case errors.As(err, &se):
			s.storeDegraded.Store(true)
			s.writeErr(w, http.StatusServiceUnavailable, ErrorInfo{
				Kind:    "storage",
				Message: fmt.Sprintf("cancel not accepted: journal append failed: %v; retry once storage recovers", se.Err),
			}, s.cfg.RetryAfter)
		default:
			s.writeErr(w, http.StatusInternalServerError, ErrorInfo{Kind: "engine", Message: err.Error()}, 0)
		}
		return
	}
	status := http.StatusAccepted
	if snap.State == string(jobs.StateCanceled) {
		status = http.StatusOK
	}
	s.writeJSON(w, status, snap)
}
