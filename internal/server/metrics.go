package server

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics is GET /metrics: Prometheus text exposition (format
// 0.0.4), hand-written against the stdlib — the repo's no-dependency
// discipline extends to observability. The endpoint stays answerable
// while draining, like the health probes: shutdown is exactly when a
// scraper most wants the gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n, open := s.readySnapshot()
	jm := s.jobs.MetricsSnapshot()

	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	var sb strings.Builder
	gauge := func(name, help string, value any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	counter := func(name, help string, value any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, value)
	}

	gauge("snad_inflight_requests", "Requests currently being served.", s.inflightN.Load())
	gauge("snad_running_analyses", "Analyses currently holding a worker slot.", len(s.sem))
	gauge("snad_queued_requests", "Requests waiting for a worker slot.", s.queuedN.Load())
	gauge("snad_request_capacity", "Concurrent analysis worker slots.", s.cfg.MaxConcurrent)
	gauge("snad_request_queue_depth", "Admission queue capacity.", s.cfg.QueueDepth)
	counter("snad_shed_requests_total", "Requests shed by bounded admission (429).", s.shedN.Load())
	gauge("snad_sessions_loaded", "Sessions materialized in memory.", n)
	gauge("snad_breakers_open", "Sessions with an open circuit breaker.", len(open))
	gauge("snad_draining", "1 while a graceful drain is in progress.", b01(s.draining.Load()))
	gauge("snad_durable", "1 when a durable data directory is configured.", b01(s.store != nil))
	gauge("snad_storage_degraded", "1 after any journal append has failed.", b01(s.storeDegraded.Load() || jm.StorageDegraded))

	gauge("snad_jobs_queued", "Async jobs waiting for a job worker.", jm.Queued)
	gauge("snad_jobs_running", "Async jobs currently executing.", jm.Running)
	gauge("snad_job_queue_depth", "Async job queue capacity.", s.cfg.JobQueueDepth)
	counter("snad_jobs_done_total", "Async jobs completed successfully.", jm.Done)
	counter("snad_jobs_failed_total", "Async jobs that exhausted retries or failed permanently.", jm.Failed)
	counter("snad_jobs_canceled_total", "Async jobs canceled by request.", jm.Canceled)
	counter("snad_jobs_quarantined_total", "Poison jobs parked after repeated panics, crashes, or degradations.", jm.Quarantined)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, sb.String())
}
