package server

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"

	"repro/internal/intern"
)

// handleMetrics is GET /metrics: Prometheus text exposition (format
// 0.0.4), hand-written against the stdlib — the repo's no-dependency
// discipline extends to observability. The endpoint stays answerable
// while draining, like the health probes: shutdown is exactly when a
// scraper most wants the gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n, open := s.readySnapshot()
	jm := s.jobs.MetricsSnapshot()
	running, queued := s.gate.snapshot()
	cs := s.cache.stats()

	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	var sb strings.Builder
	gauge := func(name, help string, value any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	counter := func(name, help string, value any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, value)
	}

	gauge("snad_inflight_requests", "Requests currently being served.", s.inflightN.Load())
	gauge("snad_running_analyses", "Analyses currently holding a worker slot.", running)
	gauge("snad_queued_requests", "Requests waiting for a worker slot.", queued)
	gauge("snad_request_capacity", "Concurrent analysis worker slots.", s.cfg.MaxConcurrent)
	gauge("snad_request_queue_depth", "Admission queue capacity.", s.cfg.QueueDepth)
	counter("snad_shed_requests_total", "Requests shed by bounded admission (429).", s.shedN.Load())
	gauge("snad_sessions_loaded", "Sessions materialized in memory.", n)
	gauge("snad_breakers_open", "Sessions with an open circuit breaker.", len(open))
	gauge("snad_draining", "1 while a graceful drain is in progress.", b01(s.draining.Load()))
	gauge("snad_durable", "1 when a durable data directory is configured.", b01(s.store != nil))
	gauge("snad_storage_degraded", "1 after any journal append has failed.", b01(s.storeDegraded.Load() || jm.StorageDegraded))

	gauge("snad_jobs_queued", "Async jobs waiting for a job worker.", jm.Queued)
	gauge("snad_jobs_running", "Async jobs currently executing.", jm.Running)
	gauge("snad_job_queue_depth", "Async job queue capacity.", s.cfg.JobQueueDepth)
	counter("snad_jobs_done_total", "Async jobs completed successfully.", jm.Done)
	counter("snad_jobs_failed_total", "Async jobs that exhausted retries or failed permanently.", jm.Failed)
	counter("snad_jobs_canceled_total", "Async jobs canceled by request.", jm.Canceled)
	counter("snad_jobs_quarantined_total", "Poison jobs parked after repeated panics, crashes, or degradations.", jm.Quarantined)

	// Memory governance: the shared design cache and its byte budget.
	gauge("snad_mem_budget_bytes", "Configured server memory budget for cached designs (0 = unlimited).", cs.Budget)
	gauge("snad_mem_charged_bytes", "Bytes charged to resident cached designs.", cs.Charged)
	gauge("snad_cached_designs", "Bound designs resident in the shared cache.", cs.Entries)
	gauge("snad_cached_designs_referenced", "Cached designs currently referenced by at least one session or shard token.", cs.Referenced)
	counter("snad_design_cache_hits_total", "Session builds served from the shared design cache (including single-flight coalesces).", cs.Hits)
	counter("snad_design_cache_misses_total", "Session builds that parsed and bound a new design.", cs.Misses)
	counter("snad_design_cache_evictions_total", "Idle cached designs evicted for budget headroom.", cs.Evictions)
	counter("snad_budget_sheds_total", "Requests shed with 503 because the memory budget could not fit their design.", cs.BudgetSheds)

	// Go runtime gauges: the load harness and the CI smoke job read heap
	// occupancy next to the cache's own accounting.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("snad_go_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", ms.HeapAlloc)
	gauge("snad_go_heap_sys_bytes", "Bytes of heap obtained from the OS (runtime.MemStats.HeapSys).", ms.HeapSys)
	gauge("snad_go_goroutines", "Live goroutines.", runtime.NumGoroutine())
	syms, symBytes := intern.Stats()
	gauge("snad_interned_symbols", "Strings interned in the global symbol table.", syms)
	gauge("snad_interned_bytes", "Estimated bytes held by the global symbol table.", symBytes)

	// Per-stage latency histograms.
	s.histAdmission.Write(&sb)
	s.histAnalysis.Write(&sb)
	s.histFsync.Write(&sb)
	s.histJobRun.Write(&sb)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, sb.String())
}
