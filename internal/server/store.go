package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/wal"
)

// Store is the durable session store: an append-only write-ahead journal
// of session lifecycle events plus per-session snapshot files, under one
// data directory. Its contract to the server:
//
//   - An acknowledged Create/Delete/Padding is durable: the record is
//     framed (length + CRC32), appended, and fsynced before the call
//     returns, so a crash immediately after cannot lose (or, for Delete,
//     resurrect) the session.
//
//   - Every multi-byte file replacement (snapshots, the manifest) is
//     atomic: written to a temp file, fsynced, renamed into place, and
//     the directory fsynced. A crash at any instant leaves either the
//     old file or the new one, never a hybrid; stray temp files are
//     swept on boot.
//
//   - Recovery is fail-soft: a corrupt or unreplayable record is moved
//     to quarantine/ with a structured reason and the boot continues
//     with every healthy session (see recovery.go).
//
// Layout of the data directory:
//
//	MANIFEST            framed JSON {version, generation}
//	journal-NNNNNN.wal  the active journal for generation NNNNNN
//	sessions/HASH.snap  framed JSON snapshot per persisted session
//	quarantine/*        unreplayable records/files + reasons
//
// Compaction folds the journal into snapshots: every live session is
// snapshotted, stale snapshots of deleted sessions are removed, a fresh
// empty journal for generation+1 is created, and the manifest flips to
// the new generation — in that order, so a crash at any point between
// steps replays to the same state from either generation.
//
// Store methods are safe for concurrent use. The in-memory spec index
// mirrors the durable state so the server can list and lazily
// re-materialize persisted sessions (including ones LRU-evicted from
// memory) without touching disk on the read path.
type Store struct {
	dir   string
	logf  func(format string, args ...any)
	hooks wal.Hooks

	mu      sync.Mutex
	journal *wal.Writer
	gen     uint64
	seq     uint64
	specs   map[string]*sessionSpec
	// recordsSinceCompact triggers background-free compaction once the
	// journal accumulates compactEvery records.
	recordsSinceCompact int
	compactEvery        int
	quarantined         int
}

// sessionSpec is everything needed to re-materialize one session: the
// original create request and the cumulative window padding applied
// since.
type sessionSpec struct {
	Create  *CreateSessionRequest `json:"create"`
	Padding map[string]float64    `json:"padding,omitempty"`
	// restoredAt is the boot instant the spec was recovered from disk;
	// zero for specs created in this process's lifetime.
	restoredAt time.Time
}

func (sp *sessionSpec) clone() *sessionSpec {
	out := &sessionSpec{Create: sp.Create, restoredAt: sp.restoredAt}
	if len(sp.Padding) > 0 {
		out.Padding = make(map[string]float64, len(sp.Padding))
		for k, v := range sp.Padding {
			out.Padding[k] = v
		}
	}
	return out
}

// manifest is the framed JSON of the MANIFEST file.
type manifest struct {
	Version    int    `json:"version"`
	Generation uint64 `json:"generation"`
}

const (
	manifestName  = "MANIFEST"
	sessionsDir   = "sessions"
	quarantineDir = "quarantine"
	// defaultCompactEvery bounds journal growth: one compaction per this
	// many appended records.
	defaultCompactEvery = 64
)

func journalName(gen uint64) string { return fmt.Sprintf("journal-%06d.wal", gen) }

// snapName maps a session name to its snapshot filename. Session names
// are client-chosen free text, so the filename is a truncated SHA-256 —
// fixed length, collision-resistant, and immune to path tricks; the real
// name lives inside the snapshot payload.
func snapName(name string) string {
	sum := sha256.Sum256([]byte(name))
	return hex.EncodeToString(sum[:16]) + ".snap"
}

// writeFileAtomic lands data at path through the temp+fsync+rename+dirsync
// discipline, with the fault hooks at each stage.
func (st *Store) writeFileAtomic(path string, data []byte) error {
	return wal.WriteFileAtomic(path, data, st.hooks)
}

// --- lifecycle events -------------------------------------------------

// appendLocked journals one record; callers hold st.mu. On success the
// in-memory effects have NOT been applied — callers apply them after, so
// a journaling failure leaves the index matching the durable state.
func (st *Store) appendLocked(typ, name string, create *CreateSessionRequest, padding map[string]float64) error {
	st.seq++
	rec := &record{
		Seq:     st.seq,
		Type:    typ,
		Name:    name,
		Create:  create,
		Padding: padding,
		Time:    time.Now().UTC().Format(time.RFC3339Nano),
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encoding journal record: %w", err)
	}
	if err := st.journal.Append(payload); err != nil {
		// The tail may now hold a torn frame. Sequence numbers must not
		// be reused (replay treats non-monotonic seq as corruption), so
		// the burned seq stays burned.
		return err
	}
	st.recordsSinceCompact++
	return nil
}

// Create durably records a session creation. It must succeed before the
// server acknowledges the create: an acknowledged session survives a
// crash.
func (st *Store) Create(req *CreateSessionRequest) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.appendLocked("create", req.Name, req, nil); err != nil {
		return err
	}
	st.specs[req.Name] = &sessionSpec{Create: req}
	st.maybeCompactLocked()
	return nil
}

// Delete durably records a session tombstone. It must succeed before the
// server acknowledges the delete: a crash right after the 200 must not
// resurrect the session on replay. The snapshot file (if any) is removed
// after the tombstone lands; if that removal is lost to a crash, the
// replayed tombstone still wins.
func (st *Store) Delete(name string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.appendLocked("delete", name, nil, nil); err != nil {
		return err
	}
	delete(st.specs, name)
	snap := filepath.Join(st.dir, sessionsDir, snapName(name))
	if err := os.Remove(snap); err != nil && !os.IsNotExist(err) {
		st.logf("store: removing snapshot of deleted %q: %v (tombstone journaled; compaction will finish the cleanup)", name, err)
	}
	st.maybeCompactLocked()
	return nil
}

// Padding durably records the session's cumulative window padding.
// Padding is max-monotonic, so the journal carries the full cumulative
// map — replaying any prefix of padding records yields a state the next
// record absorbs.
func (st *Store) Padding(name string, padding map[string]float64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp := st.specs[name]
	if sp == nil {
		return fmt.Errorf("store: padding for unknown session %q", name)
	}
	cp := make(map[string]float64, len(padding))
	for k, v := range padding {
		cp[k] = v
	}
	if err := st.appendLocked("padding", name, nil, cp); err != nil {
		return err
	}
	sp.Padding = cp
	st.maybeCompactLocked()
	return nil
}

// Spec returns a copy of the persisted spec for name, or nil. The server
// uses it to lazily re-materialize sessions that were LRU-evicted from
// memory (or never loaded after a restart).
func (st *Store) Spec(name string) *sessionSpec {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp := st.specs[name]
	if sp == nil {
		return nil
	}
	return sp.clone()
}

// Names returns the sorted names of every persisted session.
func (st *Store) Names() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.specs))
	for name := range st.specs {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

// QuarantineSpec removes a persisted session whose spec cannot be
// re-materialized (sources no longer build — disk rot inside a CRC-valid
// record, or format skew): the spec bytes move to quarantine/ with a
// reason sidecar and a tombstone is journaled so it never resurfaces.
// It returns the report entry, or nil when the name is unknown.
func (st *Store) QuarantineSpec(name, reason string) *report.QuarantineJSON {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp := st.specs[name]
	if sp == nil {
		return nil
	}
	dst := st.quarantinePath(snapName(name) + ".spec")
	if payload, err := json.Marshal(sp); err == nil {
		if werr := os.WriteFile(dst, payload, 0o644); werr != nil {
			st.logf("store: writing quarantined spec %s: %v", dst, werr)
		}
	}
	if err := st.appendLocked("delete", name, nil, nil); err != nil {
		st.logf("store: journaling quarantine tombstone for %q: %v", name, err)
	}
	delete(st.specs, name)
	if err := os.Remove(filepath.Join(st.dir, sessionsDir, snapName(name))); err != nil && !os.IsNotExist(err) {
		st.logf("store: removing quarantined snapshot of %q: %v", name, err)
	}
	rel, err := filepath.Rel(st.dir, dst)
	if err != nil {
		rel = dst
	}
	entry := &report.QuarantineJSON{File: rel, Source: "snapshot", Session: name, Reason: reason}
	if meta, err := json.Marshal(entry); err == nil {
		if werr := os.WriteFile(dst+".reason.json", meta, 0o644); werr != nil {
			st.logf("store: writing quarantine reason for %q: %v", name, werr)
		}
	}
	st.quarantined++
	return entry
}

// Close flushes nothing (appends are already fsynced) and releases the
// journal file.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return nil
	}
	err := st.journal.Close()
	st.journal = nil
	return err
}

// --- compaction -------------------------------------------------------

// maybeCompactLocked compacts when the journal has accumulated enough
// records; a failure is logged and retried after the next append —
// compaction is an optimization, not a durability requirement.
func (st *Store) maybeCompactLocked() {
	if st.recordsSinceCompact < st.compactEvery {
		return
	}
	if err := st.compactLocked(); err != nil {
		st.logf("store: compaction failed (will retry): %v", err)
	}
}

// compactLocked folds the journal into snapshots and starts a fresh
// generation. Ordering is the crash-safety argument:
//
//  1. snapshot every live session (atomic replaces)
//  2. remove snapshots of sessions that no longer exist — before the
//     manifest flips, while the old journal's tombstones still replay
//  3. create + fsync the new empty journal
//  4. flip the manifest (atomic replace) — the commit point
//  5. remove the old journal
//
// A crash before 4 recovers from the old generation (snapshots are
// absorbed by replay because creates overwrite and padding is
// max-monotonic); a crash after 4 recovers from the new generation's
// snapshots alone.
func (st *Store) compactLocked() error {
	for name, sp := range st.specs {
		if err := st.writeSnapshotLocked(name, sp); err != nil {
			return fmt.Errorf("snapshotting %q: %w", name, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(st.dir, sessionsDir))
	if err != nil {
		return err
	}
	live := make(map[string]bool, len(st.specs))
	for name := range st.specs {
		live[snapName(name)] = true
	}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".snap") && !live[name] {
			if err := os.Remove(filepath.Join(st.dir, sessionsDir, name)); err != nil {
				return err
			}
		}
	}
	if err := wal.SyncDir(filepath.Join(st.dir, sessionsDir)); err != nil {
		return err
	}

	newGen := st.gen + 1
	nj, err := wal.OpenWriter(filepath.Join(st.dir, journalName(newGen)), st.hooks)
	if err != nil {
		return err
	}
	if err := nj.Sync(); err != nil {
		nj.Close()
		return err
	}
	if err := st.writeManifestLocked(newGen); err != nil {
		nj.Close()
		// The new journal file is harmless: boot ignores journals of
		// other generations and sweeps them.
		return err
	}
	old := st.journal
	st.journal, st.gen, st.seq = nj, newGen, 0
	st.recordsSinceCompact = 0
	if old != nil {
		oldPath := old.Path()
		old.Close()
		if err := os.Remove(oldPath); err != nil && !os.IsNotExist(err) {
			st.logf("store: removing compacted journal %s: %v", oldPath, err)
		}
	}
	if err := wal.SyncDir(st.dir); err != nil {
		st.logf("store: syncing data dir after compaction: %v", err)
	}
	return nil
}

func (st *Store) writeSnapshotLocked(name string, sp *sessionSpec) error {
	payload, err := json.Marshal(sp)
	if err != nil {
		return err
	}
	path := filepath.Join(st.dir, sessionsDir, snapName(name))
	return st.writeFileAtomic(path, wal.Frame(payload))
}

func (st *Store) writeManifestLocked(gen uint64) error {
	payload, err := json.Marshal(manifest{Version: 1, Generation: gen})
	if err != nil {
		return err
	}
	return st.writeFileAtomic(filepath.Join(st.dir, manifestName), wal.Frame(payload))
}

// sortStrings is a tiny insertion sort, matching sortInfos' dependency
// discipline (stdlib-only, no sort import for two call sites).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
