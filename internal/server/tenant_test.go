package server

import (
	"testing"
)

// grabbed drains a waiter's ready channel without blocking.
func granted(w *waiter) bool {
	select {
	case <-w.ready:
		return true
	default:
		return false
	}
}

func TestAdmissionTenantCap(t *testing.T) {
	a := newAdmission(4, 8, 2)
	if !a.tryAcquire("a") || !a.tryAcquire("a") {
		t.Fatal("tenant a should get its first two slots")
	}
	if a.tryAcquire("a") {
		t.Fatal("tenant a must be capped at 2 running")
	}
	// Capacity remains for other tenants.
	if !a.tryAcquire("b") || !a.tryAcquire("b") {
		t.Fatal("tenant b should fill the remaining capacity")
	}
	if a.tryAcquire("c") {
		t.Fatal("capacity 4 is exhausted")
	}
	// Releasing an a-slot reopens a for a, not past its cap.
	a.release("a")
	if !a.tryAcquire("a") {
		t.Fatal("released slot should be reacquirable")
	}
}

func TestAdmissionCapClampsToCapacity(t *testing.T) {
	for _, cap := range []int{0, -3, 99} {
		a := newAdmission(2, 4, cap)
		if a.tenantCap != 2 {
			t.Fatalf("tenantCap %d should clamp to capacity 2, got %d", cap, a.tenantCap)
		}
	}
}

func TestAdmissionRoundRobinAcrossTenants(t *testing.T) {
	a := newAdmission(1, 16, 1)
	if !a.tryAcquire("bulk") {
		t.Fatal("first slot")
	}
	// bulk floods the queue, then live joins behind it.
	b1 := a.enqueue("bulk")
	b2 := a.enqueue("bulk")
	l1 := a.enqueue("live")
	if b1 == nil || b2 == nil || l1 == nil {
		t.Fatal("waiters should queue")
	}
	// First release grants the tenant next in ring order (bulk queued
	// first): b1.
	a.release("bulk")
	if !granted(b1) || granted(b2) || granted(l1) {
		t.Fatalf("first grant should be b1 (b1=%v b2=%v l1=%v)", granted(b1), granted(b2), granted(l1))
	}
	// Round-robin: the next grant goes to live, NOT to bulk's second
	// waiter — that is the whole point of per-tenant queues.
	a.release("bulk")
	if !granted(l1) || granted(b2) {
		t.Fatal("second grant must rotate to the live tenant")
	}
	a.release("live")
	if !granted(b2) {
		t.Fatal("third grant drains bulk's remaining waiter")
	}
}

func TestAdmissionQueueCapSheds(t *testing.T) {
	a := newAdmission(1, 1, 1)
	if !a.tryAcquire("a") {
		t.Fatal("slot")
	}
	if a.enqueue("a") == nil {
		t.Fatal("first waiter fits the queue")
	}
	if a.enqueue("b") != nil {
		t.Fatal("queueCap 1 must refuse the second waiter")
	}
}

func TestAdmissionNoBargingPastOwnQueue(t *testing.T) {
	a := newAdmission(2, 8, 2)
	if !a.tryAcquire("a") || !a.tryAcquire("a") {
		t.Fatal("slots")
	}
	w := a.enqueue("a")
	if w == nil {
		t.Fatal("waiter")
	}
	// A newcomer must not slip into the released slot ahead of its own
	// tenant's queued waiter: the release hands the slot to the waiter.
	a.release("a")
	if !granted(w) {
		t.Fatal("release should grant the queued waiter")
	}
	if running, _ := a.snapshot(); running != 2 {
		t.Fatalf("running = %d, want 2 (grant reoccupied the slot)", running)
	}
	if a.tryAcquire("a") {
		t.Fatal("capacity is full again after the grant")
	}
}

// ringSize reports the gate's ring length and whether any tenant holds
// more than one slot (the duplicate-slot bug gave such tenants extra
// round-robin turns and grew the ring without bound).
func ringState(a *admission) (size int, dup bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := make(map[string]bool, len(a.ring))
	for _, t := range a.ring {
		if seen[t] {
			dup = true
		}
		seen[t] = true
	}
	return len(a.ring), dup
}

func TestAdmissionRingStableUnderChurn(t *testing.T) {
	// Steady at-capacity single-tenant load: every cycle queues one
	// waiter, drains it by grant, and refills. The ring must not grow and
	// the tenant must never occupy two slots.
	a := newAdmission(1, 8, 1)
	if !a.tryAcquire("") {
		t.Fatal("slot")
	}
	for i := 0; i < 100; i++ {
		w := a.enqueue("")
		if w == nil {
			t.Fatalf("cycle %d: waiter refused", i)
		}
		a.release("") // grants w, emptying the queue
		if !granted(w) {
			t.Fatalf("cycle %d: waiter not granted", i)
		}
		if size, dup := ringState(a); size > 1 || dup {
			t.Fatalf("cycle %d: ring size %d (dup=%v), want <= 1 with no duplicates", i, size, dup)
		}
	}
	// Same churn via the abandon path: enqueue then withdraw.
	for i := 0; i < 100; i++ {
		w := a.enqueue("t")
		if w == nil {
			t.Fatalf("abandon cycle %d: waiter refused", i)
		}
		if !a.abandon(w) {
			t.Fatalf("abandon cycle %d: abandon should win (slot busy)", i)
		}
		if size, dup := ringState(a); size > 1 || dup {
			t.Fatalf("abandon cycle %d: ring size %d (dup=%v)", i, size, dup)
		}
	}
	// An abandon-drained tenant leaves no stale queue map key behind.
	a.mu.Lock()
	if q, ok := a.queues["t"]; ok {
		a.mu.Unlock()
		t.Fatalf("abandoned tenant left queues entry %v", q)
	}
	a.mu.Unlock()
	// Fairness still intact after churn: a second tenant's waiter is not
	// starved by the churned tenant's next waiter.
	w1 := a.enqueue("")
	w2 := a.enqueue("live")
	a.release("")
	a.release("")
	if !granted(w1) || !granted(w2) {
		t.Fatal("both tenants should be granted after churn")
	}
}

func TestAdmissionAbandon(t *testing.T) {
	a := newAdmission(1, 8, 1)
	if !a.tryAcquire("a") {
		t.Fatal("slot")
	}
	w := a.enqueue("b")
	if !a.abandon(w) {
		t.Fatal("abandon before any grant should win")
	}
	// The abandoned waiter must not receive the next grant.
	a.release("a")
	if granted(w) {
		t.Fatal("abandoned waiter must not be granted")
	}
	running, queued := a.snapshot()
	if running != 0 || queued != 0 {
		t.Fatalf("snapshot = (%d, %d), want (0, 0)", running, queued)
	}

	// Grant-vs-abandon race, resolved in the grant's favor: abandon
	// reports false and the caller owns the slot.
	if !a.tryAcquire("a") {
		t.Fatal("slot")
	}
	w2 := a.enqueue("c")
	a.release("a") // dispatch grants w2
	if !granted(w2) {
		t.Fatal("w2 should be granted")
	}
	if a.abandon(w2) {
		t.Fatal("abandon after grant must report false (caller owns a slot)")
	}
}
