package server

// Tenant-fair bounded admission. The old gate was a pair of buffered
// channels (worker semaphore + wait queue): correct, but FIFO across
// all callers, so one bulk tenant flooding the queue starves every
// interactive user behind it. admission keeps the same outer contract —
// at most capacity running, at most queueCap waiting, overflow shed
// immediately — and replaces global FIFO with:
//
//   - per-tenant FIFO wait queues (order within a tenant is preserved),
//   - round-robin grants across tenants with waiters, and
//   - a per-tenant running cap (tenantCap), so even with an empty ring a
//     single tenant cannot occupy every worker slot.
//
// With tenantCap == capacity (the default) and one tenant, the behavior
// is indistinguishable from the old gate. The tenant ID is free text
// from the X-Snad-Tenant header; absent means the "" tenant, so
// untagged traffic shares one fair slice instead of bypassing fairness.

import (
	"net/http"
	"sync"
)

// TenantHeader carries the tenant ID on requests and job submissions
// (exported for the client and load harness).
const TenantHeader = "X-Snad-Tenant"

func tenantOf(r *http.Request) string { return r.Header.Get(TenantHeader) }

// waiter is one queued admission request. ready closes when the slot is
// granted; granted is guarded by the admission mutex and arbitrates the
// grant-vs-abandon race.
type waiter struct {
	tenant  string
	ready   chan struct{}
	granted bool
}

type admission struct {
	capacity  int
	queueCap  int
	tenantCap int

	mu        sync.Mutex
	running   int
	queued    int
	runningBy map[string]int
	queues    map[string][]*waiter
	// ring lists tenants awaiting grants; dispatch round-robins over it
	// from rr. inRing mirrors ring's membership so enqueue never adds a
	// duplicate slot (a duplicate would hand that tenant extra turns and
	// grow the ring without bound under drain-then-refill churn). A
	// tenant whose queue drains by grant leaves the ring immediately;
	// one drained by abandon leaves lazily on the next dispatch scan,
	// with inRing keeping enqueue honest in between.
	ring   []string
	inRing map[string]bool
	rr     int
}

func newAdmission(capacity, queueCap, tenantCap int) *admission {
	if tenantCap <= 0 || tenantCap > capacity {
		tenantCap = capacity
	}
	return &admission{
		capacity:  capacity,
		queueCap:  queueCap,
		tenantCap: tenantCap,
		runningBy: make(map[string]int),
		queues:    make(map[string][]*waiter),
		inRing:    make(map[string]bool),
	}
}

// tryAcquire takes a slot without waiting. It fails when capacity is
// exhausted, the tenant is at its running cap, or the tenant already
// has waiters (a newcomer must not barge past its own tenant's queue;
// other tenants' waiters are at their cap or a slot would have been
// dispatched to them already).
func (a *admission) tryAcquire(tenant string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running >= a.capacity || a.runningBy[tenant] >= a.tenantCap || len(a.queues[tenant]) > 0 {
		return false
	}
	a.running++
	a.runningBy[tenant]++
	return true
}

// enqueue registers a waiter, or returns nil when the wait queue is at
// queueCap (the caller sheds with 429).
func (a *admission) enqueue(tenant string) *waiter {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.queued >= a.queueCap {
		return nil
	}
	w := &waiter{tenant: tenant, ready: make(chan struct{})}
	if !a.inRing[tenant] {
		a.ring = append(a.ring, tenant)
		a.inRing[tenant] = true
	}
	a.queues[tenant] = append(a.queues[tenant], w)
	a.queued++
	// A slot may be free right now (e.g. other tenants capped); dispatch
	// so the new waiter doesn't wait for the next release.
	a.dispatchLocked()
	return w
}

// abandon withdraws a waiter whose request expired or was drained. It
// reports true when the waiter was still queued; false means the grant
// already happened and the caller owns a slot it must release.
func (a *admission) abandon(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return false
	}
	q := a.queues[w.tenant]
	for i, x := range q {
		if x == w {
			if len(q) == 1 {
				delete(a.queues, w.tenant)
			} else {
				a.queues[w.tenant] = append(q[:i], q[i+1:]...)
			}
			a.queued--
			break
		}
	}
	// A drained tenant's ring entry is removed lazily by dispatch;
	// inRing stays set until then so enqueue does not add a duplicate.
	return true
}

// release returns a slot and dispatches the next waiter.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.running--
	if n := a.runningBy[tenant] - 1; n > 0 {
		a.runningBy[tenant] = n
	} else {
		delete(a.runningBy, tenant)
	}
	a.dispatchLocked()
}

// dispatchLocked grants free slots round-robin across tenants with
// waiters, skipping tenants at their running cap and dropping drained
// ring entries. Callers hold a.mu.
func (a *admission) dispatchLocked() {
	for a.running < a.capacity && a.queued > 0 {
		granted := false
		scanned := 0
		for scanned < len(a.ring) {
			if a.rr >= len(a.ring) {
				a.rr = 0
			}
			t := a.ring[a.rr]
			q := a.queues[t]
			if len(q) == 0 {
				// Tenant drained by abandon: drop its ring slot without
				// advancing rr (the next tenant slides into this index).
				a.ring = append(a.ring[:a.rr], a.ring[a.rr+1:]...)
				delete(a.queues, t)
				delete(a.inRing, t)
				continue
			}
			if a.runningBy[t] >= a.tenantCap {
				a.rr = (a.rr + 1) % len(a.ring)
				scanned++
				continue
			}
			w := q[0]
			if len(q) == 1 {
				// Granting the last waiter: leave the ring now, keeping
				// the "tenant in ring iff it has waiters (or a pending
				// lazy removal)" invariant. rr stays put — the next
				// tenant slides into this index.
				delete(a.queues, t)
				delete(a.inRing, t)
				a.ring = append(a.ring[:a.rr], a.ring[a.rr+1:]...)
			} else {
				a.queues[t] = q[1:]
				a.rr = (a.rr + 1) % len(a.ring)
			}
			a.queued--
			w.granted = true
			a.running++
			a.runningBy[t]++
			close(w.ready)
			granted = true
			break
		}
		if !granted {
			// Every waiting tenant is at its cap; the next release
			// re-dispatches.
			return
		}
	}
}

// snapshot reports the gate's occupancy for /readyz and /metrics.
func (a *admission) snapshot() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, a.queued
}
