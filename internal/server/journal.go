package server

import (
	"encoding/json"
	"fmt"

	"repro/internal/wal"
)

// The session journal rides on internal/wal's shared framing and
// crash-safety machinery (frames, torn-tail repair, fail-soft scans);
// this file owns only the session-specific record schema and the
// monotonic-sequence check layered on a raw scan.

const frameHeaderLen = wal.FrameHeaderLen

// record is one journaled session lifecycle event.
type record struct {
	// Seq is the record's sequence number within its journal generation,
	// starting at 1. Replay verifies monotonicity as a cheap ordering
	// check.
	Seq uint64 `json:"seq"`
	// Type is "create", "padding", or "delete".
	Type string `json:"type"`
	// Name is the session the event applies to.
	Name string `json:"name"`
	// Create carries the full CreateSessionRequest for "create" records —
	// everything needed to re-materialize the session from scratch.
	Create *CreateSessionRequest `json:"create,omitempty"`
	// Padding carries the cumulative per-net window padding for
	// "padding" records. Padding is max-monotonic, so replaying a stale
	// record is absorbed, never harmful.
	Padding map[string]float64 `json:"padding,omitempty"`
	// Time is the wall-clock instant the record was appended (RFC3339,
	// informational only — replay order is file order).
	Time string `json:"time,omitempty"`
}

// journalScan is the result of reading one journal file to its end (or
// to the first unreadable byte), with frames decoded into session
// records.
type journalScan struct {
	records []*record
	// torn reports the file ended in a partial frame (crash mid-append).
	torn bool
	// corrupt is the frame-level reason reading stopped before EOF for a
	// non-torn cause (CRC mismatch, absurd length); empty otherwise.
	corrupt string
	// badRecords holds framed payloads that read back intact but did not
	// decode into a usable record, with reasons; replay continues past
	// them.
	badRecords []badRecord
}

type badRecord struct {
	payload []byte
	reason  string
}

// scanJournal reads every readable record of the journal at path. A
// missing file is an empty journal. Reading never fails the boot: every
// abnormality is reported in the scan for the recovery layer to
// quarantine.
func scanJournal(path string) (*journalScan, error) {
	raw, err := wal.Scan(path)
	if err != nil {
		return nil, err
	}
	scan := &journalScan{torn: raw.Torn, corrupt: raw.Corrupt}
	var lastSeq uint64
	for _, payload := range raw.Frames {
		var rec record
		if derr := json.Unmarshal(payload, &rec); derr != nil {
			scan.badRecords = append(scan.badRecords, badRecord{payload: payload, reason: fmt.Sprintf("undecodable record: %v", derr)})
			continue
		}
		if rec.Seq <= lastSeq {
			scan.badRecords = append(scan.badRecords, badRecord{payload: payload, reason: fmt.Sprintf("out-of-order record: seq %d after %d", rec.Seq, lastSeq)})
			continue
		}
		lastSeq = rec.Seq
		scan.records = append(scan.records, &rec)
	}
	return scan, nil
}
