package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The journal is an append-only sequence of framed records. Every frame
// is
//
//	[4 bytes little-endian payload length][4 bytes IEEE CRC32 of payload][payload]
//
// so a reader can detect exactly where a crash mid-append (torn write) or
// later corruption (bit rot, truncation) left the file: a frame whose
// header or payload runs past EOF is a torn tail, and a frame whose CRC
// does not match is corruption. The distinction matters for recovery
// policy — a torn tail is the expected signature of a crash and is
// silently discarded after replaying everything before it, while a CRC
// mismatch in the middle of the file is quarantined with a reason.
//
// Payloads are JSON record objects (see record). JSON costs a few bytes
// over a binary encoding but makes quarantined records and on-disk
// journals inspectable with nothing but cat — worth it at session
// lifecycle rates (a record per create/delete, not per analysis).

const (
	frameHeaderLen = 8
	// maxFramePayload bounds one record. Create payloads carry whole
	// design databases inline, so the bound is generous; its real job is
	// rejecting the absurd lengths a corrupted header decodes to before
	// a reader tries to allocate them.
	maxFramePayload = 1 << 30
)

// record is one journaled session lifecycle event.
type record struct {
	// Seq is the record's sequence number within its journal generation,
	// starting at 1. Replay verifies monotonicity as a cheap ordering
	// check.
	Seq uint64 `json:"seq"`
	// Type is "create", "padding", or "delete".
	Type string `json:"type"`
	// Name is the session the event applies to.
	Name string `json:"name"`
	// Create carries the full CreateSessionRequest for "create" records —
	// everything needed to re-materialize the session from scratch.
	Create *CreateSessionRequest `json:"create,omitempty"`
	// Padding carries the cumulative per-net window padding for
	// "padding" records. Padding is max-monotonic, so replaying a stale
	// record is absorbed, never harmful.
	Padding map[string]float64 `json:"padding,omitempty"`
	// Time is the wall-clock instant the record was appended (RFC3339,
	// informational only — replay order is file order).
	Time string `json:"time,omitempty"`
}

// frame wraps a payload in the length+CRC header.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// frameErr classifies why reading a frame failed.
type frameErr struct {
	torn   bool // ran past EOF: crash mid-append
	reason string
}

func (e *frameErr) Error() string { return e.reason }

// readFrame reads one frame from r. io.EOF means a clean end exactly at
// a frame boundary; a *frameErr reports a torn tail or corruption.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, &frameErr{torn: true, reason: fmt.Sprintf("torn frame header: %v", err)}
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFramePayload {
		return nil, &frameErr{reason: fmt.Sprintf("frame length %d exceeds limit %d (corrupt header)", n, maxFramePayload)}
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, &frameErr{torn: true, reason: fmt.Sprintf("torn frame payload (%d of %d bytes): %v", m, n, err)}
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, &frameErr{reason: fmt.Sprintf("frame CRC mismatch: stored %08x, computed %08x", want, got)}
	}
	return payload, nil
}

// journalWriter appends framed records to an open journal file, fsyncing
// each append so an acknowledged record survives a crash. It tracks the
// end offset of the last good frame: a failed append (torn write, fsync
// error) leaves a partial frame at the tail, and appending after one
// would hide every later record from replay — which stops at the first
// unreadable frame — so the writer truncates back to the good offset
// before the next append. If even the truncate fails, the journal is
// broken and refuses all further appends rather than acknowledging
// records a replay would never see.
type journalWriter struct {
	f     *os.File
	path  string
	hooks storeHooks
	// off is the file offset after the last fully synced frame.
	off int64
	// broken refuses appends after an unrepairable tail.
	broken error
}

func openJournalWriter(path string, hooks storeHooks) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &journalWriter{f: f, path: path, hooks: hooks, off: fi.Size()}, nil
}

// append frames, writes, and fsyncs one record. On failure the partial
// frame is truncated away so the tail stays replayable; the store
// surfaces the error and the record is never acknowledged.
func (j *journalWriter) append(rec *record) error {
	if j.broken != nil {
		return fmt.Errorf("journal is broken (previous append left an unrepairable tail: %w)", j.broken)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encoding journal record: %w", err)
	}
	buf := frame(payload)
	if err := j.writeFrame(buf); err != nil {
		j.repairTail()
		return err
	}
	j.off += int64(len(buf))
	return nil
}

func (j *journalWriter) writeFrame(buf []byte) error {
	keep := len(buf)
	var ferr error
	if j.hooks.beforeWrite != nil {
		keep, ferr = j.hooks.beforeWrite("append", len(buf))
		if keep > len(buf) {
			keep = len(buf)
		}
	}
	if keep > 0 {
		if _, werr := j.f.Write(buf[:keep]); werr != nil {
			return fmt.Errorf("appending journal record: %w", werr)
		}
	}
	if ferr != nil {
		return fmt.Errorf("appending journal record: %w", ferr)
	}
	if j.hooks.beforeSync != nil {
		if err := j.hooks.beforeSync("append"); err != nil {
			return fmt.Errorf("syncing journal: %w", err)
		}
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("syncing journal: %w", err)
	}
	return nil
}

// repairTail truncates a failed append's partial frame so later records
// stay reachable by replay.
func (j *journalWriter) repairTail() {
	if err := j.f.Truncate(j.off); err != nil {
		j.broken = err
		return
	}
	// Make the truncate durable; an unsynced truncate could resurrect the
	// partial frame after a crash, but everything before off is still
	// intact, so replay would at worst rediscover the torn tail.
	j.f.Sync()
}

func (j *journalWriter) close() error { return j.f.Close() }

// journalScan is the result of reading one journal file to its end (or
// to the first unreadable byte).
type journalScan struct {
	records []*record
	// torn reports the file ended in a partial frame (crash mid-append).
	torn bool
	// corrupt is the frame-level reason reading stopped before EOF for a
	// non-torn cause (CRC mismatch, absurd length); empty otherwise.
	corrupt string
	// badRecords holds framed payloads that read back intact but did not
	// decode into a usable record, with reasons; replay continues past
	// them.
	badRecords []badRecord
}

type badRecord struct {
	payload []byte
	reason  string
}

// scanJournal reads every readable record of the journal at path. A
// missing file is an empty journal. Reading never fails the boot: every
// abnormality is reported in the scan for the recovery layer to
// quarantine.
func scanJournal(path string) (*journalScan, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &journalScan{}, nil
		}
		return nil, err
	}
	defer f.Close()
	scan := &journalScan{}
	var lastSeq uint64
	for {
		payload, err := readFrame(f)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return scan, nil
			}
			var fe *frameErr
			if errors.As(err, &fe) && fe.torn {
				scan.torn = true
			} else {
				scan.corrupt = err.Error()
			}
			return scan, nil
		}
		var rec record
		if derr := json.Unmarshal(payload, &rec); derr != nil {
			scan.badRecords = append(scan.badRecords, badRecord{payload: payload, reason: fmt.Sprintf("undecodable record: %v", derr)})
			continue
		}
		if rec.Seq <= lastSeq {
			scan.badRecords = append(scan.badRecords, badRecord{payload: payload, reason: fmt.Sprintf("out-of-order record: seq %d after %d", rec.Seq, lastSeq)})
			continue
		}
		lastSeq = rec.Seq
		scan.records = append(scan.records, &rec)
	}
}
