package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/wal"
)

// Recovery: opening a data directory replays the durable state back into
// a Store. The state machine, in order:
//
//	sweep     remove stray *.tmp files (a crash between temp and rename)
//	manifest  read the framed MANIFEST for the journal generation; a
//	          corrupt or missing manifest falls back to the highest
//	          journal generation on disk (quarantining the bad manifest)
//	snapshots load every sessions/*.snap (corrupt ones quarantined)
//	replay    apply the generation's journal records in file order on
//	          top of the snapshots: create overwrites, padding merges
//	          max-monotonically, delete tombstones; a torn tail is the
//	          crash signature and is discarded after replaying everything
//	          before it, any other corruption is quarantined
//	compact   fold the replayed state into a fresh generation, so the
//	          new journal never appends after a torn frame and
//	          quarantined garbage cannot resurface on the next boot
//
// Nothing in this path refuses the boot: unreadable pieces are moved to
// quarantine/ with a structured reason and the server comes up with
// every healthy session. The one exception is the directory itself being
// unusable (cannot create, cannot open the journal for append) — that is
// a configuration error the operator must see, not a recovery problem.

// OpenStore opens (creating if needed) the data directory, replays the
// journal, and returns the store plus the recovery report that
// /v1/recovery serves.
//
//snavet:ctxloop boot-time journal replay before any request context exists; bounded by the on-disk store
func OpenStore(dir string, faults *storeFaultAdapter, compactEvery int, logf func(string, ...any)) (*Store, *report.RecoveryJSON, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if compactEvery <= 0 {
		compactEvery = defaultCompactEvery
	}
	for _, d := range []string{dir, filepath.Join(dir, sessionsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
	}
	st := &Store{
		dir:          dir,
		logf:         logf,
		specs:        make(map[string]*sessionSpec),
		compactEvery: compactEvery,
	}
	if faults != nil {
		st.hooks = faults.hooks()
	}
	rep := &report.RecoveryJSON{DataDir: dir}

	st.sweepTempFiles()
	gen, genOK := st.readManifest(rep)
	st.gen = gen

	restoredAt := time.Now().UTC()
	st.loadSnapshots(rep, restoredAt)
	st.replayJournal(rep, restoredAt)
	st.sweepStaleJournals()

	// Fold everything into a fresh generation before accepting writes:
	// the old journal may end in a torn frame, and appending after one
	// would shadow every later record from the next replay.
	if err := st.compactLocked(); err != nil {
		// Fail-soft is for corrupt *records*; being unable to write the
		// new generation means nothing can be persisted at all.
		return nil, nil, fmt.Errorf("store: starting generation %d: %w", gen+1, err)
	}
	rep.Compacted = true
	if !genOK {
		logf("store: manifest unreadable; recovered from journal generation %d", gen)
	}

	rep.RecoveredAt = restoredAt.Format(time.RFC3339Nano)
	rep.Generation = st.gen
	rep.Restored = st.Names()
	st.quarantined = len(rep.Quarantined)
	return st, rep, nil
}

// storeFaultAdapter narrows workload.StoreFaults (or anything shaped like
// it) into the store's hook seam without the workload package having to
// import server types.
type storeFaultAdapter struct {
	BeforeWrite  func(op string, size int) (int, error)
	BeforeSync   func(op string) error
	BeforeRename func(op string) error
}

func (a *storeFaultAdapter) hooks() wal.Hooks {
	return wal.Hooks{BeforeWrite: a.BeforeWrite, BeforeSync: a.BeforeSync, BeforeRename: a.BeforeRename}
}

// sweepTempFiles removes stranded *.tmp files — the debris of a crash
// between an atomic write's temp file and its rename.
func (st *Store) sweepTempFiles() {
	for _, dir := range []string{st.dir, filepath.Join(st.dir, sessionsDir)} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				path := filepath.Join(dir, e.Name())
				if err := os.Remove(path); err != nil {
					st.logf("store: sweeping %s: %v", path, err)
				} else {
					st.logf("store: swept stranded temp file %s", path)
				}
			}
		}
	}
}

// readManifest returns the journal generation, quarantining an unreadable
// manifest and falling back to the highest journal file present. The
// bool reports whether the manifest itself was usable.
func (st *Store) readManifest(rep *report.RecoveryJSON) (uint64, bool) {
	path := filepath.Join(st.dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return st.highestJournalGen(), true // fresh directory
	}
	if err == nil {
		payload, ferr := wal.ReadFrame(bytes.NewReader(data))
		if ferr == nil {
			var m manifest
			if json.Unmarshal(payload, &m) == nil && m.Version == 1 {
				return m.Generation, true
			}
			ferr = fmt.Errorf("undecodable manifest payload")
		}
		st.quarantineFile(rep, path, "manifest", "", ferr.Error())
	} else {
		st.quarantineFile(rep, path, "manifest", "", err.Error())
	}
	return st.highestJournalGen(), false
}

// highestJournalGen scans for journal-*.wal files and returns the highest
// generation found (0 when none).
func (st *Store) highestJournalGen() uint64 {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	var best uint64
	for _, e := range entries {
		var gen uint64
		if n, _ := fmt.Sscanf(e.Name(), "journal-%d.wal", &gen); n == 1 && gen > best {
			best = gen
		}
	}
	return best
}

// sweepStaleJournals removes journals of other generations — leftovers of
// a compaction that crashed after the manifest flip.
func (st *Store) sweepStaleJournals() {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	current := journalName(st.gen)
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".wal") && name != current {
			path := filepath.Join(st.dir, name)
			if err := os.Remove(path); err != nil {
				st.logf("store: sweeping stale journal %s: %v", path, err)
			} else {
				st.logf("store: swept stale journal %s", path)
			}
		}
	}
}

// loadSnapshots reads every sessions/*.snap into the spec index.
func (st *Store) loadSnapshots(rep *report.RecoveryJSON, restoredAt time.Time) {
	dir := filepath.Join(st.dir, sessionsDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		st.logf("store: reading %s: %v", dir, err)
		return
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			st.quarantineFile(rep, path, "snapshot", "", err.Error())
			continue
		}
		payload, ferr := wal.ReadFrame(bytes.NewReader(data))
		if ferr != nil {
			st.quarantineFile(rep, path, "snapshot", "", ferr.Error())
			continue
		}
		var sp sessionSpec
		if derr := json.Unmarshal(payload, &sp); derr != nil || sp.Create == nil || sp.Create.Name == "" {
			reason := "snapshot names no session"
			if derr != nil {
				reason = fmt.Sprintf("undecodable snapshot: %v", derr)
			}
			st.quarantineFile(rep, path, "snapshot", "", reason)
			continue
		}
		sp.restoredAt = restoredAt
		st.specs[sp.Create.Name] = &sp
		rep.Snapshots++
	}
}

// replayJournal applies the active generation's records on top of the
// snapshots.
func (st *Store) replayJournal(rep *report.RecoveryJSON, restoredAt time.Time) {
	path := filepath.Join(st.dir, journalName(st.gen))
	scan, err := scanJournal(path)
	if err != nil {
		st.quarantineFile(rep, path, "journal", "", err.Error())
		return
	}
	if scan.torn {
		rep.TornTail = true
		st.logf("store: journal %s ends in a torn frame (crash mid-append); tail discarded", path)
	}
	if scan.corrupt != "" {
		st.quarantineBytes(rep, "journal", "", 0, nil, scan.corrupt)
	}
	for _, bad := range scan.badRecords {
		st.quarantineBytes(rep, "journal", "", 0, bad.payload, bad.reason)
	}
	for _, rec := range scan.records {
		if reason := st.applyRecord(rec, restoredAt); reason != "" {
			st.quarantineBytes(rep, "journal", rec.Name, rec.Seq, mustJSON(rec), reason)
			continue
		}
		if rec.Seq > st.seq {
			st.seq = rec.Seq
		}
		rep.Records++
	}
}

// applyRecord applies one replayed record to the spec index, returning a
// quarantine reason for unreplayable records.
func (st *Store) applyRecord(rec *record, restoredAt time.Time) string {
	switch rec.Type {
	case "create":
		if rec.Create == nil || rec.Create.Name == "" {
			return "create record without a request payload"
		}
		st.specs[rec.Create.Name] = &sessionSpec{Create: rec.Create, restoredAt: restoredAt}
	case "padding":
		sp := st.specs[rec.Name]
		if sp == nil {
			return fmt.Sprintf("padding for unknown session %q", rec.Name)
		}
		if sp.Padding == nil {
			sp.Padding = make(map[string]float64, len(rec.Padding))
		}
		// Max-monotonic merge: replaying records out of compaction order
		// (snapshot already ahead of an old record) is absorbed.
		for net, pad := range rec.Padding {
			if pad > sp.Padding[net] {
				sp.Padding[net] = pad
			}
		}
	case "delete":
		if rec.Name == "" {
			return "delete record without a session name"
		}
		delete(st.specs, rec.Name)
	default:
		return fmt.Sprintf("unknown record type %q", rec.Type)
	}
	return ""
}

// --- quarantine -------------------------------------------------------

// quarantineFile moves an unreadable file into quarantine/ and records
// it.
func (st *Store) quarantineFile(rep *report.RecoveryJSON, path, source, session, reason string) {
	dst := st.quarantinePath(filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		st.logf("store: quarantining %s: %v", path, err)
		dst = path // report where it still is
	}
	st.addQuarantine(rep, dst, source, session, 0, reason)
}

// quarantineBytes writes an unreplayable record's bytes into quarantine/
// and records it. A nil payload records the event without a body (e.g. a
// corrupt region whose bytes are unrecoverable).
func (st *Store) quarantineBytes(rep *report.RecoveryJSON, source, session string, seq uint64, payload []byte, reason string) {
	dst := st.quarantinePath(fmt.Sprintf("%s-gen%06d-%d.rec", source, st.gen, len(rep.Quarantined)+1))
	if payload != nil {
		if err := os.WriteFile(dst, payload, 0o644); err != nil {
			st.logf("store: writing quarantine record %s: %v", dst, err)
		}
	}
	st.addQuarantine(rep, dst, source, session, seq, reason)
}

func (st *Store) quarantinePath(base string) string {
	return filepath.Join(st.dir, quarantineDir, base)
}

func (st *Store) addQuarantine(rep *report.RecoveryJSON, dst, source, session string, seq uint64, reason string) {
	rel, err := filepath.Rel(st.dir, dst)
	if err != nil {
		rel = dst
	}
	st.logf("store: QUARANTINED %s (%s): %s", rel, source, reason)
	rep.Quarantined = append(rep.Quarantined, report.QuarantineJSON{
		File:    rel,
		Source:  source,
		Session: session,
		Seq:     seq,
		Reason:  reason,
	})
	// A sidecar reason file makes the quarantine self-describing on disk.
	meta, merr := json.Marshal(rep.Quarantined[len(rep.Quarantined)-1])
	if merr == nil {
		if werr := os.WriteFile(dst+".reason.json", meta, 0o644); werr != nil {
			st.logf("store: writing quarantine reason for %s: %v", rel, werr)
		}
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(fmt.Sprintf("%+v", v))
	}
	return b
}
