package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
)

// The files under testdata/ are the checked-in sample inputs the README
// points users at; these tests pin their parseability and the end-to-end
// result they produce, so format changes that would break shipped samples
// fail loudly.

func open(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestTestdataNetFlow(t *testing.T) {
	d, err := netlist.Parse(open(t, "bus4.net"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := spef.Parse(open(t, "bus4.spef"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := sta.ParseInputTiming(open(t, "bus4.win"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bind.New(d, liberty.Generic(), p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(b, core.Options{
		Mode: core.ModeNoiseWindows,
		STA:  sta.Options{InputTiming: in},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AggressorPairs != 6 {
		t.Fatalf("couplings = %d, want 6 (4-bit bus, both directions)", res.Stats.AggressorPairs)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge")
	}
	// Mid lines are attacked from both sides but windows are staggered
	// 500 ps apart: essentially one aggressor at a time (a small tent-tail
	// graze is allowed; the full two-aggressor sum is not).
	nn := res.NoiseOf("b1")
	if nn == nil || nn.WorstPeak() <= 0 {
		t.Fatalf("b1 noise missing: %+v", nn)
	}
	for _, k := range core.Kinds {
		var maxEvent, fullSum float64
		for _, e := range nn.Events[k] {
			fullSum += e.Peak
			if e.Peak > maxEvent {
				maxEvent = e.Peak
			}
		}
		comb := nn.Comb[k].Peak
		if comb > 1.5*maxEvent {
			t.Fatalf("staggered victim combined %g vs single aggressor %g", comb, maxEvent)
		}
		if comb > 0.9*fullSum {
			t.Fatalf("staggered victim near the pessimistic sum: %g vs %g", comb, fullSum)
		}
	}
}

func TestTestdataVerilogMatchesNet(t *testing.T) {
	lib := liberty.Generic()
	dNet, err := netlist.Parse(open(t, "bus4.net"))
	if err != nil {
		t.Fatal(err)
	}
	dV, err := vlog.Parse(open(t, "bus4.v"), lib)
	if err != nil {
		t.Fatal(err)
	}
	if dNet.NumInsts() != dV.NumInsts() || dNet.NumNets() != dV.NumNets() || dNet.NumPorts() != dV.NumPorts() {
		t.Fatalf("formats disagree: net %d/%d/%d vs verilog %d/%d/%d",
			dNet.NumInsts(), dNet.NumNets(), dNet.NumPorts(),
			dV.NumInsts(), dV.NumNets(), dV.NumPorts())
	}
	for _, inst := range dNet.Insts() {
		other := dV.FindInst(inst.Name)
		if other == nil || other.Cell != inst.Cell {
			t.Fatalf("instance %s differs between formats", inst.Name)
		}
	}
}

// TestTestdataLintsClean pins the shipped sample inputs against the lint
// pass: the files the README points users at must never trip an
// error-severity rule (in either netlist format).
func TestTestdataLintsClean(t *testing.T) {
	lib := liberty.Generic()
	p, err := spef.Parse(open(t, "bus4.spef"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := sta.ParseInputTiming(open(t, "bus4.win"))
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"bus4.net", "bus4.v"} {
		var d *netlist.Design
		if filepath.Ext(src) == ".v" {
			d, err = vlog.Parse(open(t, src), lib)
		} else {
			d, err = netlist.Parse(open(t, src))
		}
		if err != nil {
			t.Fatal(err)
		}
		res := lint.Run(&lint.Input{Design: d, Lib: lib, Paras: p, Inputs: in}, lint.Config{})
		if res.HasErrors() {
			t.Fatalf("%s has lint errors:\n%+v", src, res.Diags)
		}
	}
}
