module bus4 (in0, in1, in2, in3, out0, out1, out2, out3);
  input in0, in1, in2, in3;
  output out0, out1, out2, out3;
  wire b0, b1, b2, b3, q0, q1, q2, q3;
  INV_X2 d0 (.A(in0), .Y(b0));
  INV_X2 d1 (.A(in1), .Y(b1));
  INV_X2 d2 (.A(in2), .Y(b2));
  INV_X2 d3 (.A(in3), .Y(b3));
  BUF_X1 ob0 (.A(q0), .Y(out0));
  BUF_X1 ob1 (.A(q1), .Y(out1));
  BUF_X1 ob2 (.A(q2), .Y(out2));
  BUF_X1 ob3 (.A(q3), .Y(out3));
  INV_X1 r0 (.A(b0), .Y(q0));
  INV_X1 r1 (.A(b1), .Y(q1));
  INV_X1 r2 (.A(b2), .Y(q2));
  INV_X1 r3 (.A(b3), .Y(q3));
endmodule
