// Command snadload is the overload proof harness for the snad service:
// it drives thousands of concurrent mixed clients — interactive
// analyses, async job submit/wait cycles, and session churn — across
// multiple tenants against a real snad process, and writes a
// BENCH_service.json scorecard (throughput, latency percentiles per
// class, shed rates, peak server RSS).
//
// The point is not raw numbers but the overload contract: with
// -mem-budget set below the load's footprint the server must shed with
// 503 + Retry-After (kind "budget") and keep serving, never OOM-die and
// never return an unflagged corrupt result. snadload classifies every
// response as ok, shed (a well-formed retryable refusal), or error
// (anything else), and -fail-on-errors turns the error count into the
// exit code for CI.
//
// Usage:
//
//	snadload [-snad PATH | -server URL] [-clients N] [-tenants N]
//	         [-duration 30s] [-bits N] [-variants N]
//	         [-mix interactive:8,jobs:1,churn:1]
//	         [-mem-budget 64MiB] [-tenant-cap N] [-job-tenant-cap N]
//	         [-store-inject-fault spec] [-job-inject-fault spec]
//	         [-out BENCH_service.json] [-fail-on-errors]
//
// Without -server, snadload spawns `PATH serve` on a loopback port with
// a temporary data dir, passes the governance and chaos flags through,
// and SIGTERMs it (graceful drain) when the load window closes. With
// -server, an existing deployment is targeted and the spawn-only
// readings (peak RSS) are zero.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/jobs"
	"repro/internal/netlist"
	"repro/internal/server"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

const (
	exitClean = 0
	exitFail  = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snadload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		snadPath  = fs.String("snad", "snad", "snad binary to spawn (ignored with -server)")
		serverURL = fs.String("server", "", "target an existing server instead of spawning one")
		clients   = fs.Int("clients", 256, "concurrent load clients")
		tenants   = fs.Int("tenants", 4, "distinct tenant IDs (clients are dealt round-robin)")
		duration  = fs.Duration("duration", 30*time.Second, "load window")
		bits      = fs.Int("bits", 8, "coupled-bus width of the shared fixture design")
		variants  = fs.Int("variants", 6, "distinct churn designs (each is one design-cache entry)")
		mix       = fs.String("mix", "interactive:8,jobs:1,churn:1", "client class weights")
		opTimeout = fs.Duration("op-timeout", 30*time.Second, "per-operation deadline")

		// Pass-through server governance and chaos knobs (spawn only).
		memBudget   = fs.String("mem-budget", "", "server -mem-budget passthrough, e.g. 64MiB")
		tenantCap   = fs.Int("tenant-cap", 0, "server -tenant-cap passthrough")
		jobTenCap   = fs.Int("job-tenant-cap", 0, "server -job-tenant-cap passthrough")
		maxConc     = fs.Int("max-concurrent", 0, "server -max-concurrent passthrough")
		queueDepth  = fs.Int("queue", 0, "server -queue passthrough")
		jobWorkers  = fs.Int("job-workers", 0, "server -job-workers passthrough")
		jobQueue    = fs.Int("job-queue", 0, "server -job-queue passthrough")
		jobKeep     = fs.Int("job-keep-done", 4096, "server -job-keep-done passthrough (deep: WaitJob polls must not lose terminal jobs to pruning)")
		maxSessions = fs.Int("max-sessions", 0, "server -max-sessions passthrough")
		storeFaults = fs.String("store-inject-fault", "", "server -store-inject-fault passthrough (chaos)")
		jobFaults   = fs.String("job-inject-fault", "", "server -job-inject-fault passthrough (chaos)")

		out     = fs.String("out", "BENCH_service.json", "scorecard path (empty = stdout only)")
		failErr = fs.Bool("fail-on-errors", false, "exit 1 when any non-shed error occurred")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(stderr, "snadload:", err)
		return exitUsage
	}
	if *clients < 1 || *tenants < 1 || *variants < 1 {
		fmt.Fprintln(stderr, "snadload: -clients, -tenants, and -variants must be positive")
		return exitUsage
	}

	// Generate the fixture designs up front: variant 0 is the shared base
	// design every tenant's long-lived session binds (one cache entry for
	// all of them); the rest are churn designs with distinct cache keys,
	// so session churn genuinely grows and shrinks the charged bytes.
	sources := make([]sessionSources, *variants)
	for i := range sources {
		src, err := genSources(*bits + i)
		if err != nil {
			fmt.Fprintln(stderr, "snadload: fixture:", err)
			return exitFail
		}
		sources[i] = src
	}

	// Spawn or attach.
	base := *serverURL
	var child *exec.Cmd
	if base == "" {
		dir, err := os.MkdirTemp("", "snadload-*")
		if err != nil {
			fmt.Fprintln(stderr, "snadload:", err)
			return exitFail
		}
		defer os.RemoveAll(dir)
		sargs := []string{"serve", "-listen", "127.0.0.1:0", "-data-dir", filepath.Join(dir, "data"), "-quiet"}
		for _, p := range []struct {
			flag, val string
		}{
			{"-mem-budget", *memBudget},
			{"-tenant-cap", intArg(*tenantCap)},
			{"-job-tenant-cap", intArg(*jobTenCap)},
			{"-max-concurrent", intArg(*maxConc)},
			{"-queue", intArg(*queueDepth)},
			{"-job-workers", intArg(*jobWorkers)},
			{"-job-queue", intArg(*jobQueue)},
			{"-job-keep-done", intArg(*jobKeep)},
			{"-max-sessions", intArg(*maxSessions)},
			{"-store-inject-fault", *storeFaults},
			{"-job-inject-fault", *jobFaults},
		} {
			if p.val != "" {
				sargs = append(sargs, p.flag, p.val)
			}
		}
		child, base, err = spawn(*snadPath, sargs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "snadload:", err)
			return exitFail
		}
		defer func() {
			if child.Process != nil {
				child.Process.Kill()
				child.Wait()
			}
		}()
	}

	// One shared transport for every logical client: the default two idle
	// connections per host would collapse into ephemeral-port churn at
	// thousands of clients against one loopback address.
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}
	newClient := func(policy client.RetryPolicy, tenant string) *client.Client {
		c := client.New(base, policy)
		c.SetHTTPClient(httpc)
		c.SetTenant(tenant)
		return c
	}

	setup := newClient(client.RetryPolicy{}, "")
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = setup.WaitReady(wctx)
	cancel()
	if err != nil {
		fmt.Fprintln(stderr, "snadload:", err)
		return exitFail
	}

	// One long-lived session per tenant, all over identical sources: the
	// shared design cache should bind the design once and hand every
	// tenant a reference.
	for t := 0; t < *tenants; t++ {
		c := newClient(client.RetryPolicy{}, tenantID(t))
		cctx, cancel := context.WithTimeout(context.Background(), *opTimeout)
		_, err := c.CreateSession(cctx, sources[0].request("base-"+tenantID(t)))
		cancel()
		if err != nil {
			fmt.Fprintln(stderr, "snadload: base session:", err)
			return exitFail
		}
	}

	fmt.Fprintf(stdout, "snadload: %d clients, %d tenants, %s window against %s\n",
		*clients, *tenants, *duration, base)

	// The load window. Every client runs a closed loop of its class's
	// operation until the deadline; latencies and outcomes land in the
	// per-class recorders.
	rec := map[string]*recorder{
		classInteractive: newRecorder(),
		classJobs:        newRecorder(),
		classChurn:       newRecorder(),
	}
	deadline := time.Now().Add(*duration)
	lctx, lcancel := context.WithDeadline(context.Background(), deadline)
	var wg sync.WaitGroup
	var churnSeq atomic.Int64
	for i := 0; i < *clients; i++ {
		cls := weights.classOf(i)
		tenant := tenantID(i % *tenants)
		c := newClient(client.RetryPolicy{MaxAttempts: 1}, tenant)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for {
				if time.Until(deadline) < 50*time.Millisecond {
					return
				}
				switch cls {
				case classInteractive:
					oneInteractive(lctx, c, tenant, *opTimeout, rec[cls])
				case classJobs:
					oneJob(lctx, c, tenant, *opTimeout, rec[cls])
				case classChurn:
					// Churn clients draw from the non-base variants so
					// every create charges a genuinely new cache entry.
					v := 0
					if len(sources) > 1 {
						v = 1 + rng.Intn(len(sources)-1)
					}
					name := fmt.Sprintf("churn-%s-%d", tenant, churnSeq.Add(1))
					oneChurn(lctx, c, name, sources[v], *opTimeout, rec[cls])
				}
			}
		}(i)
	}
	wg.Wait()
	lcancel()

	// Post-load snapshot, before the server is torn down.
	bench := &benchDoc{
		Clients:  *clients,
		Tenants:  *tenants,
		Duration: duration.Seconds(),
		Mix:      *mix,
		Bits:     *bits,
		Variants: *variants,
		Chaos:    *storeFaults != "" || *jobFaults != "",
		Classes:  map[string]classDoc{},
	}
	for name, r := range rec {
		bench.Classes[name] = r.doc(duration.Seconds())
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if rz, err := setup.Ready(sctx); err == nil {
		bench.Server = &serverDoc{
			MemBudget:      rz.MemBudget,
			MemCharged:     rz.MemCharged,
			CachedDesigns:  rz.CachedDesigns,
			CacheHits:      rz.CacheHits,
			CacheEvictions: rz.CacheEvictions,
			BudgetSheds:    rz.BudgetSheds,
			AdmissionSheds: rz.Shed,
		}
	}
	cancel()
	if child != nil {
		bench.PeakRSSBytes = peakRSS(child.Process.Pid)
		// Graceful drain: the server must come down clean under SIGTERM
		// even straight out of overload.
		child.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- child.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			fmt.Fprintln(stderr, "snadload: server did not drain within 30s; killing")
			child.Process.Kill()
			<-done
			bench.DrainTimedOut = true
		}
	}

	blob, _ := json.MarshalIndent(bench, "", "  ")
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(stderr, "snadload:", err)
			return exitFail
		}
	}
	stdout.Write(blob)

	var errTotal int64
	classNames := make([]string, 0, len(bench.Classes))
	for name := range bench.Classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		c := bench.Classes[name]
		if c.Errors > 0 {
			errTotal += c.Errors
			for _, s := range c.ErrorSamples {
				fmt.Fprintf(stderr, "snadload: %s error: %s\n", name, s)
			}
		}
	}
	if bench.DrainTimedOut {
		fmt.Fprintln(stderr, "snadload: FAIL: server did not drain")
		return exitFail
	}
	if *failErr && errTotal > 0 {
		fmt.Fprintf(stderr, "snadload: FAIL: %d non-shed errors\n", errTotal)
		return exitFail
	}
	return exitClean
}

// --- client classes -----------------------------------------------------

const (
	classInteractive = "interactive"
	classJobs        = "jobs"
	classChurn       = "churn"
)

// oneInteractive is one synchronous analyze round-trip against the
// tenant's long-lived session.
func oneInteractive(ctx context.Context, c *client.Client, tenant string, opTimeout time.Duration, r *recorder) {
	octx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	start := time.Now()
	resp, err := c.Analyze(octx, "base-"+tenant, &server.AnalyzeRequest{}, 0)
	if err == nil && (resp == nil || resp.Noise == nil) {
		err = fmt.Errorf("analyze returned no noise section")
	}
	r.observe(ctx, start, err)
}

// oneJob is one async submit → wait-terminal cycle. The latency covers
// the whole cycle including queue wait — that is what a job caller sees.
func oneJob(ctx context.Context, c *client.Client, tenant string, opTimeout time.Duration, r *recorder) {
	octx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	start := time.Now()
	snap, err := c.SubmitJob(octx, &jobs.Spec{Session: "base-" + tenant, Type: "analyze"})
	if err == nil {
		snap, err = c.WaitJob(octx, snap.ID)
		if err == nil && snap.State != "done" {
			if snap.Error != "" || snap.Quarantined {
				// An honestly flagged failure — under injected chaos the
				// server is allowed (expected!) to fail jobs, as long as
				// the failure is reported, never silently corrupted.
				r.flag()
				return
			}
			err = fmt.Errorf("job %s ended %s with no error cause", snap.ID, snap.State)
		}
	}
	r.observe(ctx, start, err)
}

// oneChurn creates a transient session over one of the variant designs,
// analyzes it once, and deletes it. Create is the budget-charged step;
// delete releases the cache reference so eviction can reclaim it.
func oneChurn(ctx context.Context, c *client.Client, name string, src sessionSources, opTimeout time.Duration, r *recorder) {
	octx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	start := time.Now()
	_, err := c.CreateSession(octx, src.request(name))
	if err == nil {
		_, err = c.Analyze(octx, name, &server.AnalyzeRequest{}, 0)
		// Best-effort delete regardless of the analyze outcome — a
		// leaked churn session would pin cache bytes for the whole run.
		dctx, dcancel := context.WithTimeout(context.Background(), opTimeout)
		if derr := c.Delete(dctx, name); err == nil && derr != nil {
			err = derr
		}
		dcancel()
	}
	r.observe(ctx, start, err)
}

// --- outcome recording --------------------------------------------------

type recorder struct {
	mu      sync.Mutex
	lat     []float64 // seconds, successful ops only
	ok      int64
	shed    int64
	flagged int64
	errors  int64
	samples []string
}

// flag records an operation whose failure the server reported honestly
// (e.g. a chaos-injected job failure with its cause attached) — allowed
// under the overload contract, unlike a silent error.
func (r *recorder) flag() {
	r.mu.Lock()
	r.flagged++
	r.mu.Unlock()
}

func newRecorder() *recorder { return &recorder{} }

// observe classifies one operation. A retryable APIError is a shed —
// the server refusing load with a well-formed 429/503 — and anything
// else non-nil is an error, except a cancellation caused by the load
// window closing, which is neither.
func (r *recorder) observe(loadCtx context.Context, start time.Time, err error) {
	d := time.Since(start).Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case err == nil:
		r.ok++
		r.lat = append(r.lat, d)
	case isShed(err):
		r.shed++
	case loadCtx.Err() != nil:
		// Window closed mid-operation; not the server's fault.
	default:
		r.errors++
		if len(r.samples) < 5 {
			r.samples = append(r.samples, err.Error())
		}
	}
}

func isShed(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Retryable()
	}
	return false
}

func (r *recorder) doc(windowSec float64) classDoc {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Float64s(r.lat)
	d := classDoc{
		OK:           r.ok,
		Shed:         r.shed,
		Flagged:      r.flagged,
		Errors:       r.errors,
		ErrorSamples: r.samples,
	}
	if windowSec > 0 {
		d.Throughput = float64(r.ok) / windowSec
	}
	if total := r.ok + r.shed + r.flagged + r.errors; total > 0 {
		d.ShedRate = float64(r.shed) / float64(total)
	}
	d.P50Ms = pctMs(r.lat, 0.50)
	d.P95Ms = pctMs(r.lat, 0.95)
	d.P99Ms = pctMs(r.lat, 0.99)
	return d
}

func pctMs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i] * 1000
}

// --- scorecard ----------------------------------------------------------

type benchDoc struct {
	Clients  int     `json:"clients"`
	Tenants  int     `json:"tenants"`
	Duration float64 `json:"durationSec"`
	Mix      string  `json:"mix"`
	Bits     int     `json:"bits"`
	Variants int     `json:"variants"`
	Chaos    bool    `json:"chaos"`

	Classes map[string]classDoc `json:"classes"`
	Server  *serverDoc          `json:"server,omitempty"`
	// PeakRSSBytes is the spawned server's VmHWM; 0 with -server.
	PeakRSSBytes  int64 `json:"peakRSSBytes"`
	DrainTimedOut bool  `json:"drainTimedOut,omitempty"`
}

type classDoc struct {
	OK   int64 `json:"ok"`
	Shed int64 `json:"shed"`
	// Flagged counts failures the server reported honestly with a cause
	// (chaos-injected job failures, quarantines); Errors counts
	// everything else — the contract violations.
	Flagged    int64   `json:"flagged"`
	Errors     int64   `json:"errors"`
	Throughput float64 `json:"throughputPerSec"`
	ShedRate   float64 `json:"shedRate"`
	P50Ms      float64 `json:"p50Ms"`
	P95Ms      float64 `json:"p95Ms"`
	P99Ms      float64 `json:"p99Ms"`

	ErrorSamples []string `json:"errorSamples,omitempty"`
}

type serverDoc struct {
	MemBudget      int64 `json:"memBudget"`
	MemCharged     int64 `json:"memCharged"`
	CachedDesigns  int   `json:"cachedDesigns"`
	CacheHits      int64 `json:"cacheHits"`
	CacheEvictions int64 `json:"cacheEvictions"`
	BudgetSheds    int64 `json:"budgetSheds"`
	AdmissionSheds int64 `json:"admissionSheds"`
}

// --- fixture ------------------------------------------------------------

type sessionSources struct {
	netlist, spefSrc, timing string
}

func genSources(bits int) (sessionSources, error) {
	g, err := workload.Bus(workload.BusSpec{Bits: bits, Segs: 2, WindowWidth: 80 * units.Pico})
	if err != nil {
		return sessionSources{}, err
	}
	var net, sp, win bytes.Buffer
	if err := netlist.Write(&net, g.Design); err != nil {
		return sessionSources{}, err
	}
	if err := spef.Write(&sp, g.Paras); err != nil {
		return sessionSources{}, err
	}
	if err := sta.WriteInputTiming(&win, g.Inputs); err != nil {
		return sessionSources{}, err
	}
	return sessionSources{netlist: net.String(), spefSrc: sp.String(), timing: win.String()}, nil
}

func (s sessionSources) request(name string) *server.CreateSessionRequest {
	return &server.CreateSessionRequest{
		Name: name, Netlist: s.netlist, SPEF: s.spefSrc, Timing: s.timing,
	}
}

// --- plumbing -----------------------------------------------------------

func tenantID(i int) string { return "t" + strconv.Itoa(i) }

func intArg(v int) string {
	if v == 0 {
		return ""
	}
	return strconv.Itoa(v)
}

// mixWeights deals client indexes into classes proportionally to the
// configured weights.
type mixWeights struct {
	classes []string
	weights []int
	total   int
}

func parseMix(s string) (*mixWeights, error) {
	m := &mixWeights{}
	for _, item := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(item), ":")
		if !ok {
			return nil, fmt.Errorf("bad -mix item %q (want class:weight)", item)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", val)
		}
		switch name {
		case classInteractive, classJobs, classChurn:
		default:
			return nil, fmt.Errorf("unknown -mix class %q", name)
		}
		m.classes = append(m.classes, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("-mix weights sum to zero")
	}
	return m, nil
}

func (m *mixWeights) classOf(i int) string {
	slot := i % m.total
	for k, w := range m.weights {
		if slot < w {
			return m.classes[k]
		}
		slot -= w
	}
	return m.classes[len(m.classes)-1]
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// spawn starts `snad serve` and parses its listen handshake.
func spawn(path string, args []string, stderr io.Writer) (*exec.Cmd, string, error) {
	cmd := exec.Command(path, args...)
	out := &lockedBuffer{}
	cmd.Stdout = out
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("spawn %s: %w", path, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return cmd, "http://" + m[1], nil
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, "", fmt.Errorf("server never reported its address; output: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// peakRSS reads a process's resident high-water mark (VmHWM) from
// /proc; 0 on platforms without it.
func peakRSS(pid int) int64 {
	f, err := os.Open(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				return 0
			}
			return kb * 1024
		}
	}
	return 0
}
