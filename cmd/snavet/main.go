// snavet is the repo's custom vet suite: five go/analysis-style checkers
// that prove, at vet time, the invariants this codebase's incidents were
// made of — context checks in per-net loops (ctxloop), sorted iteration
// ahead of ordered output (mapdeterm), NaN guards ahead of interval.New
// (nanguard), panic-safe semaphore release in the server (deferrelease),
// and journal-before-acknowledge in handlers (ackorder). DESIGN.md §9 maps
// each analyzer to the incident that motivated it.
//
// Two ways to run it:
//
//	go build -o bin/snavet ./cmd/snavet
//	go vet -vettool=$PWD/bin/snavet ./...     # what CI runs
//	bin/snavet [-json] [-run a,b] [pattern ...]   # standalone, default ./...
//
// The first form speaks the go-vet unit-checker protocol (-V=full, -flags,
// *.cfg) and inherits vet's build cache; the second loads packages itself
// via `go list -export` and prints the same diagnostics, optionally as
// JSON in the shared snalint/snavet diagnostics schema.
//
// Findings are waived in source with `//snavet:<key> <reason>` on the
// offending line or the line above. The reason is mandatory, unknown keys
// and stale waivers are diagnostics themselves, and `snavet help` lists
// every analyzer with its key.
//
// Exit codes (standalone mode):
//
//	0  clean
//	2  diagnostics reported
//	3  usage error
//	4  load/typecheck failure
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/report"
)

const (
	exitClean = 0
	exitDiags = 2
	exitUsage = 3
	exitFail  = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		versionFlag = fs.String("V", "", "print version for the go command's build cache (go vet protocol)")
		flagsFlag   = fs.Bool("flags", false, "print flag description in JSON (go vet protocol)")
		jsonOut     = fs.Bool("json", false, "emit diagnostics as JSON in the shared snalint/snavet schema")
		runOnly     = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: snavet [-json] [-run a,b] [package pattern ...]\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which snavet) ./...\n")
		fmt.Fprintf(stderr, "       snavet help\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	// go vet protocol: describe the executable for the build cache.
	if *versionFlag != "" {
		return printVersion(stdout, stderr)
	}
	// go vet protocol: describe pass-through flags.
	if *flagsFlag {
		fmt.Fprintln(stdout, `[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON"}]`)
		return exitClean
	}

	analyzers, code := selectAnalyzers(*runOnly, stderr)
	if code != exitClean {
		return code
	}

	rest := fs.Args()
	if len(rest) == 1 && rest[0] == "help" {
		printHelp(stdout, analyzers)
		return exitClean
	}

	// go vet protocol: a single *.cfg argument names one compilation unit.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		diags, err := analysis.RunUnit(rest[0], analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "snavet: %v\n", err)
			return exitFail
		}
		return emit(diags, *jsonOut, stdout, stderr)
	}

	// Standalone mode: load package patterns ourselves.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.LoadAndRun(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "snavet: %v\n", err)
		return exitFail
	}
	return emit(diags, *jsonOut, stdout, stderr)
}

// printVersion implements -V=full: the go command caches vet results keyed
// on this line, so it embeds a content hash of the executable — rebuild
// the tool and every cached verdict is invalidated.
func printVersion(stdout, stderr io.Writer) int {
	name := "snavet"
	if exe, err := os.Executable(); err == nil {
		name = filepath.Base(exe)
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, cErr := io.Copy(h, f)
			f.Close()
			if cErr == nil {
				fmt.Fprintf(stdout, "%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
				return exitClean
			}
		}
	}
	fmt.Fprintf(stdout, "%s version devel buildID=unknown\n", name)
	return exitClean
}

func selectAnalyzers(runOnly string, stderr io.Writer) ([]*analysis.Analyzer, int) {
	all := analysis.All()
	if runOnly == "" {
		return all, exitClean
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runOnly, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := analysis.ByName(name)
		if a == nil {
			fmt.Fprintf(stderr, "snavet: unknown analyzer %q in -run\n", name)
			return nil, exitUsage
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return all, exitClean
	}
	return out, exitClean
}

func printHelp(w io.Writer, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(w, "snavet enforces this repository's hard-won invariants at vet time.\n\n")
	fmt.Fprintf(w, "Waive a finding with //snavet:<key> <reason> on the line or the line above.\n\n")
	t := report.NewTable("registered analyzers", "analyzer", "waiver key", "description")
	for _, a := range analyzers {
		t.AddRow(a.Name, "//snavet:"+a.DirectiveName(), a.Doc)
	}
	t.Render(w)
}

// emit prints diagnostics and returns the exit code. In plain mode the
// diagnostics go to stderr (the go vet convention, so `go vet -vettool`
// interleaves them with its own output correctly); in JSON mode the
// machine-readable report goes to stdout.
func emit(diags []analysis.Diagnostic, jsonOut bool, stdout, stderr io.Writer) int {
	if jsonOut {
		out := &report.ToolDiagsJSON{Tool: "snavet", Errors: len(diags)}
		for _, d := range diags {
			out.Diagnostics = append(out.Diagnostics, report.ToolDiagJSON{
				Rule:     d.Analyzer,
				Severity: "error",
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		if err := report.WriteToolDiagsJSON(stdout, out); err != nil {
			fmt.Fprintf(stderr, "snavet: %v\n", err)
			return exitFail
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return exitDiags
	}
	return exitClean
}
