package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
	"repro/internal/workload"
)

// The capacity ladder behind -scale: one rung per target net count, each
// measuring the full pipeline — streaming parse of on-disk Verilog, SPEF,
// and input-timing files, binding, and a windowed noise analysis — so the
// checked-in BENCH_scale.json tracks end-to-end cost per net as designs
// grow from 10k toward 1M nets. Unlike the -bench-out suite (steady-state
// engine ops on small fixtures), the ladder runs each rung once: at 1M
// nets a single load+analyze IS the workload, and the per-net normalization
// is what makes rungs comparable.

// scaleRecord is one rung's result.
type scaleRecord struct {
	// Nets is the realized net count of the rung's design.
	Nets int `json:"nets"`
	// LoadNs covers parsing the .v/.spef/.win files and binding.
	LoadNs float64 `json:"load_ns"`
	// AnalyzeNs covers one windowed noise analysis of the bound design.
	AnalyzeNs float64 `json:"analyze_ns"`
	// NsPerNet and AllocsPerNet normalize the analysis cost; the load
	// figures get their own per-net column.
	NsPerNet         float64 `json:"ns_per_net"`
	AllocsPerNet     float64 `json:"allocs_per_net"`
	LoadNsPerNet     float64 `json:"load_ns_per_net"`
	LoadAllocsPerNet float64 `json:"load_allocs_per_net"`
	// PeakRSSBytes is the process high-water mark (VmHWM) after the rung:
	// monotone across rungs, so ascending order keeps it meaningful.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

// parseRungs parses the -rungs flag: a comma-separated ascending list of
// target net counts.
func parseRungs(s string) ([]int, error) {
	var rungs []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad rung %q: %w", f, err)
		}
		if len(rungs) > 0 && n <= rungs[len(rungs)-1] {
			return nil, fmt.Errorf("rungs must be ascending (peak-RSS is monotone), got %s", s)
		}
		rungs = append(rungs, n)
	}
	if len(rungs) == 0 {
		return nil, fmt.Errorf("no rungs in %q", s)
	}
	return rungs, nil
}

// peakRSS reads the process's resident high-water mark from
// /proc/self/status; 0 on platforms without it.
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				return 0
			}
			return kb * 1024
		}
	}
	return 0
}

// writeRungFiles generates the rung's design and writes it to dir as the
// .v/.spef/.win triple the timed load will parse back.
func writeRungFiles(dir string, nets int) (realized int, err error) {
	g, err := workload.Scale(workload.ScaleSpec{Nets: nets})
	if err != nil {
		return 0, err
	}
	write := func(name string, fn func(io.Writer) error) {
		if err != nil {
			return
		}
		var f *os.File
		if f, err = os.Create(filepath.Join(dir, name)); err != nil {
			return
		}
		if err = fn(f); err != nil {
			f.Close()
			return
		}
		err = f.Close()
	}
	write("design.v", func(w io.Writer) error { return vlog.Write(w, g.Design) })
	write("design.spef", func(w io.Writer) error { return spef.Write(w, g.Paras) })
	write("design.win", func(w io.Writer) error { return sta.WriteInputTiming(w, g.Inputs) })
	return g.Design.NumNets(), err
}

// loadRung parses the rung's files through the streaming loaders and binds
// the design, mirroring what the sna CLI does with real inputs.
func loadRung(dir string) (*bind.Design, core.Options, error) {
	var opts core.Options
	vf, err := os.Open(filepath.Join(dir, "design.v"))
	if err != nil {
		return nil, opts, err
	}
	defer vf.Close()
	d, err := vlog.Parse(vf, liberty.Generic())
	if err != nil {
		return nil, opts, err
	}
	sf, err := os.Open(filepath.Join(dir, "design.spef"))
	if err != nil {
		return nil, opts, err
	}
	defer sf.Close()
	paras, err := spef.Parse(sf)
	if err != nil {
		return nil, opts, err
	}
	wf, err := os.Open(filepath.Join(dir, "design.win"))
	if err != nil {
		return nil, opts, err
	}
	defer wf.Close()
	inputs, err := sta.ParseInputTiming(wf)
	if err != nil {
		return nil, opts, err
	}
	bd, err := bind.New(d, liberty.Generic(), paras)
	if err != nil {
		return nil, opts, err
	}
	opts = core.Options{Mode: core.ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}
	return bd, opts, nil
}

// runScale climbs the ladder and writes the records to path. A positive
// maxAllocsPerNet turns the run into a regression gate: any rung whose
// analysis allocates more than that per net fails the invocation.
func runScale(ctx context.Context, path, rungSpec string, maxAllocsPerNet float64, stdout io.Writer) error {
	rungs, err := parseRungs(rungSpec)
	if err != nil {
		return err
	}
	var records []scaleRecord
	for _, nets := range rungs {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec, err := runRung(ctx, nets)
		if err != nil {
			return fmt.Errorf("rung %d: %w", nets, err)
		}
		fmt.Fprintf(stdout, "scale %8d nets  load %8.0f ms  analyze %8.0f ms  %7.0f ns/net  %6.1f allocs/net  rss %d MB\n",
			rec.Nets, rec.LoadNs/1e6, rec.AnalyzeNs/1e6, rec.NsPerNet, rec.AllocsPerNet, rec.PeakRSSBytes>>20)
		records = append(records, rec)
		if maxAllocsPerNet > 0 && rec.AllocsPerNet > maxAllocsPerNet {
			return fmt.Errorf("rung %d: %.1f allocs/net exceeds limit %.1f",
				nets, rec.AllocsPerNet, maxAllocsPerNet)
		}
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runRung measures one rung: generate and write the design, then a timed
// alloc-counted load (parse + bind) and a timed alloc-counted analysis.
func runRung(ctx context.Context, nets int) (scaleRecord, error) {
	var rec scaleRecord
	dir, err := os.MkdirTemp("", "noisebench-scale")
	if err != nil {
		return rec, err
	}
	defer os.RemoveAll(dir)
	realized, err := writeRungFiles(dir, nets)
	if err != nil {
		return rec, err
	}
	rec.Nets = realized
	perNet := float64(realized)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	bd, opts, err := loadRung(dir)
	if err != nil {
		return rec, err
	}
	rec.LoadNs = float64(time.Since(start).Nanoseconds())
	runtime.ReadMemStats(&after)
	rec.LoadNsPerNet = rec.LoadNs / perNet
	rec.LoadAllocsPerNet = float64(after.Mallocs-before.Mallocs) / perNet

	runtime.ReadMemStats(&before)
	start = time.Now()
	if _, err := core.AnalyzeCtx(ctx, bd, opts); err != nil {
		return rec, err
	}
	rec.AnalyzeNs = float64(time.Since(start).Nanoseconds())
	runtime.ReadMemStats(&after)
	rec.NsPerNet = rec.AnalyzeNs / perNet
	rec.AllocsPerNet = float64(after.Mallocs-before.Mallocs) / perNet
	rec.PeakRSSBytes = peakRSS()
	return rec, nil
}
