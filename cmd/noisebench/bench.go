package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/shard"
	"repro/internal/units"
	"repro/internal/workload"
)

// The engine benchmark suite behind -bench-out: wall-clock and allocation
// numbers for the core analysis entry points, written as JSON so CI and
// the checked-in BENCH_core.json can diff engine-level performance without
// parsing `go test -bench` output. The headline metric is the incremental
// speedup: the iterative loop on the ladder workload versus the same loop
// re-analyzed from scratch every round.

// benchRecord is one benchmark's result.
type benchRecord struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// measure times fn over runs iterations (after one warmup) and reports
// mean wall clock and heap allocations per iteration.
func measure(ctx context.Context, name string, runs int, fn func() error) (benchRecord, error) {
	rec := benchRecord{Name: name, Runs: runs}
	if err := fn(); err != nil {
		return rec, fmt.Errorf("%s: %w", name, err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return rec, err
		}
		if err := fn(); err != nil {
			return rec, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	rec.NsPerOp = float64(elapsed.Nanoseconds()) / float64(runs)
	rec.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(runs)
	return rec, nil
}

// scratchRounds runs the pre-incremental reference loop — a fresh full
// analysis every round — and returns the round count at convergence.
func scratchRounds(ctx context.Context, bd *bind.Design, opts core.Options) (int, error) {
	const tol = units.Pico / 100
	padding := make(map[string]float64)
	opts.STA.WindowPadding = padding
	for round := 1; round <= 8; round++ {
		if _, err := core.AnalyzeCtx(ctx, bd, opts); err != nil {
			return 0, err
		}
		delay, err := core.AnalyzeDelayCtx(ctx, bd, opts)
		if err != nil {
			return 0, err
		}
		grew := false
		for _, im := range delay.Impacts {
			if im.Delta > padding[im.Net]+tol {
				padding[im.Net] = im.Delta
				grew = true
			}
		}
		if !grew {
			return round, nil
		}
	}
	return 0, fmt.Errorf("scratch loop did not converge in 8 rounds")
}

// runBench executes the suite and writes the records to path.
func runBench(ctx context.Context, path string, quick bool, stdout io.Writer) error {
	runs := func(full int) int {
		if quick {
			if full >= 10 {
				return full / 10
			}
			return 1
		}
		return full
	}
	bindGen := func(g *workload.Generated, err error) (*bind.Design, core.Options, error) {
		if err != nil {
			return nil, core.Options{}, err
		}
		bd, err := g.Bind(liberty.Generic())
		if err != nil {
			return nil, core.Options{}, err
		}
		return bd, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()}, nil
	}

	bus, busOpts, err := bindGen(workload.Bus(workload.BusSpec{
		Bits: 64, Segs: 2,
		WindowSep: 60 * units.Pico, WindowWidth: 80 * units.Pico,
	}))
	if err != nil {
		return err
	}
	fabric, fabricOpts, err := bindGen(workload.Fabric(workload.FabricSpec{Width: 12, Levels: 8, Seed: 3}))
	if err != nil {
		return err
	}
	ladder, ladderOpts, err := bindGen(workload.Ladder(workload.LadderSpec{Lines: 64, Steps: 5}))
	if err != nil {
		return err
	}

	var records []benchRecord
	add := func(rec benchRecord, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-24s %8d runs  %12.0f ns/op  %10.0f allocs/op\n",
			rec.Name, rec.Runs, rec.NsPerOp, rec.AllocsPerOp)
		records = append(records, rec)
		return nil
	}

	if err := add(measure(ctx, "analyze_bus64", runs(100), func() error {
		_, err := core.AnalyzeCtx(ctx, bus, busOpts)
		return err
	})); err != nil {
		return err
	}
	if err := add(measure(ctx, "analyze_fabric", runs(100), func() error {
		_, err := core.AnalyzeCtx(ctx, fabric, fabricOpts)
		return err
	})); err != nil {
		return err
	}

	// The same bus fixture through the sharded coordinator: in-process
	// workers sharing the bound design, so the column isolates the op
	// protocol, partitioning, and boundary-exchange overhead relative to
	// analyze_bus64 rather than transport or parse cost.
	const distWorkers, distShards = 2, 4
	dist, err := measure(ctx, "distributed_bus64", runs(20), func() error {
		workers := make([]shard.Worker, distWorkers)
		for i := range workers {
			workers[i] = shard.NewInProc(fmt.Sprintf("w%d", i),
				func(context.Context) (*bind.Design, error) { return bus, nil }, busOpts)
		}
		out, err := shard.Run(ctx, shard.Config{
			B: bus, Opts: busOpts, Workers: workers, Shards: distShards, Token: "bench",
		})
		if err != nil {
			return err
		}
		if out.Degraded {
			return fmt.Errorf("distributed bus64 run degraded")
		}
		return nil
	})
	if err != nil {
		return err
	}
	dist.Extra = map[string]float64{"workers": distWorkers, "shards": distShards}
	if err := add(dist, nil); err != nil {
		return err
	}

	iter, err := core.AnalyzeIterativeCtx(ctx, ladder, ladderOpts, 0)
	if err != nil {
		return err
	}
	if !iter.Converged {
		return fmt.Errorf("ladder workload did not converge (%d rounds)", iter.Rounds)
	}
	inc, err := measure(ctx, "iterative_incremental", runs(50), func() error {
		_, err := core.AnalyzeIterativeCtx(ctx, ladder, ladderOpts, 0)
		return err
	})
	if err != nil {
		return err
	}
	inc.Extra = map[string]float64{"rounds": float64(iter.Rounds)}
	if err := add(inc, nil); err != nil {
		return err
	}
	rounds, err := scratchRounds(ctx, ladder, ladderOpts)
	if err != nil {
		return err
	}
	scr, err := measure(ctx, "iterative_scratch", runs(20), func() error {
		_, err := scratchRounds(ctx, ladder, ladderOpts)
		return err
	})
	if err != nil {
		return err
	}
	scr.Extra = map[string]float64{
		"rounds":  float64(rounds),
		"speedup": scr.NsPerOp / inc.NsPerOp,
	}
	if err := add(scr, nil); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "incremental speedup over from-scratch loop: %.2fx\n",
		scr.Extra["speedup"])

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
