// noisebench regenerates the evaluation tables and figures indexed in
// DESIGN.md §4 and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	noisebench              # run everything at full fidelity
//	noisebench -run T1      # one experiment
//	noisebench -quick       # shrunken sweeps (seconds instead of minutes)
//	noisebench -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment ID to run (default: all)")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	if *run != "" {
		ts, err := experiments.Run(*run, cfg)
		if err != nil {
			fatal(err)
		}
		for _, t := range ts {
			emit(t)
		}
		return
	}
	ts, err := experiments.All(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range ts {
		emit(t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "noisebench:", err)
	os.Exit(1)
}
