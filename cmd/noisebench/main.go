// noisebench regenerates the evaluation tables and figures indexed in
// DESIGN.md §4 and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	noisebench              # run everything at full fidelity
//	noisebench -run T1      # one experiment
//	noisebench -quick       # shrunken sweeps (seconds instead of minutes)
//	noisebench -list        # list experiment IDs
//	noisebench -timeout 5m  # bound the whole sweep's wall clock
//	noisebench -bench-out BENCH_core.json   # engine benchmarks, JSON out
//	noisebench -scale -rungs 10000,100000   # capacity ladder -> BENCH_scale.json
//	noisebench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/report"
)

func main() {
	// SIGINT/SIGTERM cancel the sweep through the same cooperative path a
	// -timeout uses, so an interrupted run still flushes partial results
	// and exits with the failure discipline instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("noisebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID    = fs.String("run", "", "experiment ID to run (default: all)")
		quick    = fs.Bool("quick", false, "shrink sweeps for a fast pass")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget for the sweep; 0 = unbounded")
		benchOut = fs.String("bench-out", "", "run the engine benchmark suite and write JSON records to this file")
		scale    = fs.Bool("scale", false, "climb the capacity ladder (load+analyze per rung) instead of running experiments")
		scaleOut = fs.String("scale-out", "BENCH_scale.json", "scale: output file for the ladder records")
		rungs    = fs.String("rungs", "10000,100000,1000000", "scale: comma-separated ascending net counts")
		maxAPN   = fs.Float64("max-allocs-per-net", 0, "scale: fail if any rung's analysis exceeds this many allocs per net (0 = no gate)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, profErr := prof.Start(*cpuProf, *memProf)
	if profErr != nil {
		fmt.Fprintln(stderr, "noisebench:", profErr)
		return 2
	}
	defer stopProf()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *scale {
		if err := runScale(ctx, *scaleOut, *rungs, *maxAPN, stdout); err != nil {
			fmt.Fprintln(stderr, "noisebench:", err)
			return 1
		}
		return 0
	}
	if *benchOut != "" {
		if err := runBench(ctx, *benchOut, *quick, stdout); err != nil {
			fmt.Fprintln(stderr, "noisebench:", err)
			return 1
		}
		return 0
	}
	cfg := experiments.Config{Quick: *quick, Ctx: ctx}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Fprintf(stdout, "# %s\n", t.Title)
			t.RenderCSV(stdout)
		} else {
			t.Render(stdout)
		}
		fmt.Fprintln(stdout)
	}
	fail := func(err error) int {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "noisebench: sweep cancelled:", err)
		} else {
			fmt.Fprintln(stderr, "noisebench:", err)
		}
		return 1
	}
	var (
		ts  []*report.Table
		err error
	)
	if *runID != "" {
		ts, err = experiments.Run(*runID, cfg)
	} else {
		ts, err = experiments.All(cfg)
	}
	if err != nil {
		return fail(err)
	}
	for _, t := range ts {
		emit(t)
	}
	return 0
}
