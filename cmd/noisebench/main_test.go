package main

import (
	"context"
	"encoding/json"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestListSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	for _, id := range []string{"T1", "T4", "F1"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("missing experiment %s in:\n%s", id, out.String())
		}
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-quick", "-run", "T5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if out.Len() == 0 {
		t.Fatal("no table output")
	}
}

func TestCancelledRunStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	start := time.Now()
	code := run(ctx, nil, &out, &errOut)
	elapsed := time.Since(start)
	if code == 0 {
		t.Fatal("cancelled sweep reported success")
	}
	if !strings.Contains(errOut.String(), "cancelled") {
		t.Fatalf("stderr does not report cancellation:\n%s", errOut.String())
	}
	// The full (non-quick) sweep takes far longer than a second; a
	// pre-cancelled context must stop it almost immediately.
	if elapsed > time.Second {
		t.Fatalf("cancelled sweep took %s", elapsed)
	}
}

func TestUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for bad flag", code)
	}
}

func TestBenchOutQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-quick", "-bench-out", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []benchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("bench output is not valid JSON: %v\n%s", err, data)
	}
	if len(records) != 5 {
		t.Fatalf("got %d records, want 5:\n%s", len(records), data)
	}
	byName := make(map[string]benchRecord)
	for _, r := range records {
		if r.NsPerOp <= 0 || r.Runs < 1 {
			t.Fatalf("degenerate record %+v", r)
		}
		byName[r.Name] = r
	}
	dist, ok := byName["distributed_bus64"]
	if !ok {
		t.Fatalf("missing distributed_bus64 record:\n%s", data)
	}
	if dist.Extra["workers"] < 2 || dist.Extra["shards"] < 2 {
		t.Fatalf("distributed record not actually sharded: %+v", dist)
	}
	scr, ok := byName["iterative_scratch"]
	if !ok {
		t.Fatalf("missing iterative_scratch record:\n%s", data)
	}
	if scr.Extra["speedup"] <= 1 {
		t.Fatalf("incremental loop not faster than scratch: speedup=%g", scr.Extra["speedup"])
	}
	if r := byName["iterative_incremental"].Extra["rounds"]; r < 4 {
		t.Fatalf("ladder converged in %g rounds, want ≥ 4", r)
	}
}

// TestInterruptSignalCancelsSweep pins the signal wiring in main: a real
// SIGTERM caught by signal.NotifyContext cancels the sweep through the
// same cooperative path as -timeout.
func TestInterruptSignalCancelsSweep(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	type result struct {
		code   int
		stderr string
	}
	done := make(chan result, 1)
	go func() {
		var out, errOut strings.Builder
		code := run(ctx, nil, &out, &errOut) // full sweep: minutes of work
		done <- result{code, errOut.String()}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.code == 0 {
			t.Fatal("interrupted sweep should not exit 0")
		}
		if !strings.Contains(r.stderr, "cancelled") {
			t.Fatalf("stderr should report the cancellation: %s", r.stderr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not stop after SIGTERM")
	}
}
