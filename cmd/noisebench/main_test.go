package main

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestListSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	for _, id := range []string{"T1", "T4", "F1"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("missing experiment %s in:\n%s", id, out.String())
		}
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-quick", "-run", "T5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if out.Len() == 0 {
		t.Fatal("no table output")
	}
}

func TestCancelledRunStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	start := time.Now()
	code := run(ctx, nil, &out, &errOut)
	elapsed := time.Since(start)
	if code == 0 {
		t.Fatal("cancelled sweep reported success")
	}
	if !strings.Contains(errOut.String(), "cancelled") {
		t.Fatalf("stderr does not report cancellation:\n%s", errOut.String())
	}
	// The full (non-quick) sweep takes far longer than a second; a
	// pre-cancelled context must stop it almost immediately.
	if elapsed > time.Second {
		t.Fatalf("cancelled sweep took %s", elapsed)
	}
}

func TestUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for bad flag", code)
	}
}
