package main

import (
	"bytes"
	"context"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// writeBus generates a 4-bit bus, optionally injects defects, serializes
// it to <dir>/bus.{net,spef,win}, and returns the three paths.
func writeBus(t *testing.T, dir string, spec workload.BusSpec, defects string) (netPath, spefPath, winPath string) {
	t.Helper()
	if spec.Bits == 0 {
		spec.Bits = 4
	}
	if spec.Segs == 0 {
		spec.Segs = 2
	}
	g, err := workload.Bus(spec)
	if err != nil {
		t.Fatal(err)
	}
	if defects != "" {
		d, err := workload.ParseDefects(defects)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Inject(d); err != nil {
			t.Fatal(err)
		}
	}
	netPath = filepath.Join(dir, "bus.net")
	spefPath = filepath.Join(dir, "bus.spef")
	winPath = filepath.Join(dir, "bus.win")
	writeTo(t, netPath, func(f *os.File) error { return netlist.Write(f, g.Design) })
	writeTo(t, spefPath, func(f *os.File) error { return spef.Write(f, g.Paras) })
	writeTo(t, winPath, func(f *os.File) error { return sta.WriteInputTiming(f, g.Inputs) })
	return netPath, spefPath, winPath
}

func writeTo(t *testing.T, path string, fn func(*os.File) error) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func runSna(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitUsage(t *testing.T) {
	for _, args := range [][]string{
		{},                                      // missing -net
		{"-bogusflag"},                          // unknown flag
		{"-net", "x", "-mode", "warp"},          // bad mode
		{"-net", "x", "-suppress", "NOSUCH999"}, // unknown rule ID
	} {
		if code, _, _ := runSna(args...); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestExitLoadFailure(t *testing.T) {
	code, _, stderr := runSna("-net", filepath.Join(t.TempDir(), "nope.net"))
	if code != exitFail {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitFail, stderr)
	}
}

func TestExitClean(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{WindowSep: 500 * units.Pico}, "")
	code, stdout, stderr := runSna("-net", n, "-spef", s, "-win", w)
	if code != exitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, exitClean, stdout, stderr)
	}
}

func TestExitLintErrors(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{}, "multi-driven")
	// Normal mode: the pre-flight rejects the design before analysis.
	code, _, stderr := runSna("-net", n, "-spef", s, "-win", w)
	if code != exitLint {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitLint, stderr)
	}
	if !strings.Contains(stderr, "NL001") {
		t.Fatalf("stderr does not name the violated rule:\n%s", stderr)
	}
	// -lint-only reports on stdout with the same exit code.
	code, stdout, _ := runSna("-net", n, "-spef", s, "-win", w, "-lint-only")
	if code != exitLint || !strings.Contains(stdout, "NL001") {
		t.Fatalf("lint-only exit = %d, want %d; stdout:\n%s", code, exitLint, stdout)
	}
}

func TestLintOnlyClean(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{}, "")
	code, stdout, _ := runSna("-net", n, "-spef", s, "-win", w, "-lint-only")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d; stdout:\n%s", code, exitClean, stdout)
	}
	if !strings.HasPrefix(stdout, "lint: 0 error(s)") {
		t.Fatalf("lint-only summary missing:\n%s", stdout)
	}
}

func TestExitViolations(t *testing.T) {
	dir := t.TempDir()
	// Aligned windows, strong coupling, weak receivers: classical
	// pessimistic combination must flag violations.
	n, s, w := writeBus(t, dir, workload.BusSpec{
		Bits: 6, CoupleC: 30 * units.Femto, GroundC: 1 * units.Femto,
	}, "")
	code, stdout, stderr := runSna("-net", n, "-spef", s, "-win", w, "-mode", "all")
	if code != exitViolations {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, exitViolations, stdout, stderr)
	}
	if !strings.Contains(stdout, "violations") {
		t.Fatalf("violation report missing:\n%s", stdout)
	}
}

func TestWerrorEscalation(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{}, "quiet-input")
	// A quiet input is only a warning: analysis proceeds.
	code, _, stderr := runSna("-net", n, "-spef", s, "-win", w)
	if code != exitClean {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitClean, stderr)
	}
	if !strings.Contains(stderr, "STA001") {
		t.Fatalf("warning not surfaced on stderr:\n%s", stderr)
	}
	// -werror turns it into a gate.
	code, _, stderr = runSna("-net", n, "-spef", s, "-win", w, "-werror")
	if code != exitLint || !strings.Contains(stderr, "STA001") {
		t.Fatalf("werror exit = %d, want %d; stderr:\n%s", code, exitLint, stderr)
	}
	// Suppressing the rule restores the clean exit even under -werror.
	code, _, _ = runSna("-net", n, "-spef", s, "-win", w, "-werror", "-suppress", "STA001")
	if code != exitClean {
		t.Fatalf("suppressed werror exit = %d, want %d", code, exitClean)
	}
}

func TestExitDegraded(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{WindowSep: 500 * units.Pico}, "")
	// An injected per-net failure on an otherwise clean design: the run
	// completes, reports the degradation, and exits degraded-clean.
	// -noprop keeps the conservative full-rail bound from propagating
	// into real downstream violations (which would rightly exit 1).
	code, stdout, stderr := runSna("-net", n, "-spef", s, "-win", w, "-noprop", "-inject-fault", "error:b1")
	if code != exitDegraded {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, exitDegraded, stdout, stderr)
	}
	if !strings.Contains(stdout, "degraded nets: 1") || !strings.Contains(stdout, "b1") {
		t.Fatalf("degradation not reported:\n%s", stdout)
	}
}

func TestFailFastFlag(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{WindowSep: 500 * units.Pico}, "")
	code, _, stderr := runSna("-net", n, "-spef", s, "-win", w, "-inject-fault", "error:b1", "-fail-fast")
	if code != exitFail {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitFail, stderr)
	}
	if !strings.Contains(stderr, "b1") {
		t.Fatalf("failure does not name the net:\n%s", stderr)
	}
}

func TestBadFaultSpecIsUsageError(t *testing.T) {
	if code, _, _ := runSna("-net", "x", "-inject-fault", "explode:b1"); code != exitUsage {
		t.Fatalf("exit = %d, want %d", code, exitUsage)
	}
}

func TestTimeoutCancelsPromptly(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{WindowSep: 500 * units.Pico}, "")
	// Every net sleeps 10ms in preparation; the 50ms deadline fires
	// mid-run and the engine must stop within a second of it.
	const deadline = 50 * time.Millisecond
	start := time.Now()
	code, _, stderr := runSna("-net", n, "-spef", s, "-win", w,
		"-inject-fault", "sleep:*", "-timeout", deadline.String())
	elapsed := time.Since(start)
	if code != exitFail {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitFail, stderr)
	}
	if !strings.Contains(stderr, "deadline exceeded") {
		t.Fatalf("stderr does not report the deadline:\n%s", stderr)
	}
	if elapsed > deadline+time.Second {
		t.Fatalf("run took %s, want exit within 1s of the %s deadline", elapsed, deadline)
	}
}

func TestJSONIncludesDegradations(t *testing.T) {
	dir := t.TempDir()
	n, s, w := writeBus(t, dir, workload.BusSpec{WindowSep: 500 * units.Pico}, "")
	jsonPath := filepath.Join(dir, "out.json")
	// -noprop keeps the degraded net's full-rail bound from propagating
	// into real downstream violations, so the run stays degraded-clean.
	code, _, stderr := runSna("-net", n, "-spef", s, "-win", w,
		"-inject-fault", "error:b2", "-noprop", "-json", jsonPath)
	if code != exitDegraded {
		t.Fatalf("exit = %d; stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"degradations"`, `"b2"`, `"prepare"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s:\n%s", want, data)
		}
	}
}

// TestInterruptSignalCancelsAnalysis pins the signal wiring: a real SIGINT
// during a slow analysis takes the cooperative fail-soft cancellation path
// and exits with the failure code, not a mid-analysis kill.
func TestInterruptSignalCancelsAnalysis(t *testing.T) {
	dir := t.TempDir()
	// 16 bits × 10ms injected sleep per net is seconds of work — plenty of
	// window to land the signal.
	n, s, w := writeBus(t, dir, workload.BusSpec{Bits: 16}, "")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	type result struct {
		code   int
		stderr string
	}
	done := make(chan result, 1)
	go func() {
		var out, errb bytes.Buffer
		code := run(ctx, []string{"-net", n, "-spef", s, "-win", w, "-inject-fault", "sleep:*"}, &out, &errb)
		done <- result{code, errb.String()}
	}()
	// Let the run get past flag parsing and into the engine before
	// signalling.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.code != exitFail {
			t.Fatalf("exit = %d, want %d\nstderr: %s", r.code, exitFail, r.stderr)
		}
		if !strings.Contains(r.stderr, "interrupted") {
			t.Fatalf("stderr should name the interrupt: %s", r.stderr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGINT")
	}
}
