// sna is the static noise analyzer: it loads a netlist, parasitics, cell
// library, and input timing, runs windowed crosstalk analysis, and prints
// the violation report.
//
// Usage:
//
//	sna -net design.net -spef design.spef [-lib lib.nlib] [-win design.win] \
//	    [-mode all|timing|noise] [-threshold 0.02] [-dump net1,net2] \
//	    [-repair] [-delay] [-corr]
//
// The netlist may also be structural Verilog (a .v file).
//
// Without -lib the built-in generic library is used. The -mode flag picks
// the combination policy: "all" (classical pessimistic), "timing"
// (switching-window filtering), or "noise" (the paper's noise windows,
// default).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
)

func main() {
	var (
		netPath   = flag.String("net", "", "netlist file (.net), required")
		spefPath  = flag.String("spef", "", "parasitics file (.spef)")
		libPath   = flag.String("lib", "", "cell library (.nlib); default: built-in generic")
		winPath   = flag.String("win", "", "input timing file (.win)")
		modeFlag  = flag.String("mode", "noise", "combination policy: all | timing | noise")
		threshold = flag.Float64("threshold", 0, "aggressor coupling-ratio filter threshold")
		dump      = flag.String("dump", "", "comma-separated nets to dump in detail")
		noProp    = flag.Bool("noprop", false, "disable noise propagation through gates")
		repair    = flag.Bool("repair", false, "suggest a physical fix per violation")
		corr      = flag.Bool("corr", false, "enable logic-correlation aggressor filtering")
		delay     = flag.Bool("delay", false, "also run crosstalk delta-delay analysis")
		iterate   = flag.Bool("iterate", false, "run the joint noise-timing fixpoint loop")
		slacks    = flag.Int("slacks", 0, "also print the N tightest receiver noise margins")
		period    = flag.Float64("period", 0, "clock period in seconds; enables timing slacks in the delta-delay report")
		jsonOut   = flag.String("json", "", "write the full result as JSON to this file")
	)
	flag.Parse()
	if *netPath == "" {
		fatal(fmt.Errorf("-net is required"))
	}

	lib := liberty.Generic()
	var err error
	if *libPath != "" {
		if lib, err = loadLibrary(*libPath); err != nil {
			fatal(err)
		}
	}
	design, err := loadNetlist(*netPath, lib)
	if err != nil {
		fatal(err)
	}
	var paras *spef.Parasitics
	if *spefPath != "" {
		if paras, err = loadSPEF(*spefPath); err != nil {
			fatal(err)
		}
	}
	var inputs map[string]*sta.Timing
	if *winPath != "" {
		if inputs, err = loadTiming(*winPath); err != nil {
			fatal(err)
		}
	}

	mode, err := parseMode(*modeFlag)
	if err != nil {
		fatal(err)
	}
	b, err := bind.New(design, lib, paras)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		Mode:             mode,
		FilterThreshold:  *threshold,
		NoPropagation:    *noProp,
		LogicCorrelation: *corr,
		STA:              sta.Options{InputTiming: inputs, ClockPeriod: *period},
	}
	var res *core.Result
	if *iterate {
		iter, err := core.AnalyzeIterative(b, opts, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("noise-timing loop: %d rounds, converged=%v, max window padding %s\n",
			iter.Rounds, iter.Converged, report.SI(iter.MaxPadding(), "s"))
		res = iter.Noise
	} else {
		var err error
		res, err = core.Analyze(b, opts)
		if err != nil {
			fatal(err)
		}
	}
	report.Violations(os.Stdout, res)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *slacks > 0 {
		report.SlackTable(os.Stdout, res, *slacks)
	}
	if *repair && len(res.Violations) > 0 {
		repairs, err := core.SuggestRepairs(b, res, 0.05)
		if err != nil {
			fatal(err)
		}
		fmt.Println("suggested repairs (5% margin):")
		for _, r := range repairs {
			fmt.Println("  " + r.Describe())
		}
	}
	if *delay {
		dres, err := core.AnalyzeDelay(b, opts)
		if err != nil {
			fatal(err)
		}
		cols := []string{"net", "edge", "noise", "delta", "members"}
		if *period > 0 {
			cols = append(cols, "slack-before", "slack-after")
		}
		t := report.NewTable(
			fmt.Sprintf("crosstalk delta-delay (%s): %d impacted edges, worst %s",
				dres.Mode, len(dres.Impacts), report.SI(dres.WorstDelta(), "s")),
			cols...)
		limit := 20
		for i, im := range dres.Impacts {
			if i == limit {
				t.AddRow("...")
				break
			}
			edge := "fall"
			if im.Rise {
				edge = "rise"
			}
			row := []string{im.Net, edge, report.SI(im.NoisePeak, "V"),
				report.SI(im.Delta, "s"), strings.Join(im.Members, "+")}
			if *period > 0 {
				if slack, ok := res.STA.TimingSlack(im.Net); ok {
					row = append(row, report.SI(slack, "s"), report.SI(slack-im.Delta, "s"))
				} else {
					row = append(row, "-", "-")
				}
			}
			t.AddRow(row...)
		}
		t.Render(os.Stdout)
	}
	if *dump != "" {
		for _, name := range strings.Split(*dump, ",") {
			name = strings.TrimSpace(name)
			nn := res.NoiseOf(name)
			if nn == nil {
				fmt.Printf("net %s: not analyzed\n", name)
				continue
			}
			report.NetSummary(os.Stdout, nn)
		}
	}
	if len(res.Violations) > 0 {
		os.Exit(2)
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "all":
		return core.ModeAllAggressors, nil
	case "timing":
		return core.ModeTimingWindows, nil
	case "noise":
		return core.ModeNoiseWindows, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want all|timing|noise)", s)
}

// loadNetlist accepts both the native .net format and structural Verilog
// (by .v extension), resolving pin directions against the library.
func loadNetlist(path string, lib *liberty.Library) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".v") {
		return vlog.Parse(f, lib)
	}
	return netlist.Parse(f)
}

func loadLibrary(path string) (*liberty.Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return liberty.Parse(f)
}

func loadSPEF(path string) (*spef.Parasitics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return spef.Parse(f)
}

func loadTiming(path string) (map[string]*sta.Timing, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sta.ParseInputTiming(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sna:", err)
	os.Exit(1)
}
