// sna is the static noise analyzer: it loads a netlist, parasitics, cell
// library, and input timing, lints the combined database, runs windowed
// crosstalk analysis, and prints the violation report.
//
// Usage:
//
//	sna -net design.net -spef design.spef [-lib lib.nlib] [-win design.win] \
//	    [-mode all|timing|noise] [-threshold 0.02] [-dump net1,net2] \
//	    [-lint-only] [-werror] [-suppress NL003,SPF001] \
//	    [-repair] [-delay] [-corr] [-timeout 30s] [-fail-fast] \
//	    [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The netlist may also be structural Verilog (a .v file).
//
// Without -lib the built-in generic library is used. The -mode flag picks
// the combination policy: "all" (classical pessimistic), "timing"
// (switching-window filtering), or "noise" (the paper's noise windows,
// default).
//
// Every run starts with the lint pre-flight (internal/lint): error-severity
// findings abort the run before analysis, because noise results computed
// from a broken database are worse than no results. -lint-only stops after
// the pre-flight and prints every diagnostic including infos.
//
// The engine runs fail-soft by default: a victim whose analysis fails is
// degraded to a conservative full-rail bound and reported in the
// degradation section instead of killing the whole run. -fail-fast
// restores abort-on-first-error. -timeout bounds the wall clock; a run
// over its deadline is cancelled cooperatively and exits with code 4.
//
// Exit codes:
//
//	0  clean: lint passed and no noise violations
//	1  analysis found noise violations
//	2  lint found error-severity problems (analysis not run)
//	3  usage error (bad flags, missing -net, unknown mode or rule ID)
//	4  load or analysis failure (unreadable/unparsable input, engine
//	   error, deadline exceeded)
//	5  degraded-clean: no violations, but one or more nets were degraded
//	   to conservative fallbacks — the result is incomplete, not clean
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
	"repro/internal/workload"
)

// Exit codes; documented in the package comment and pinned by the
// integration test.
const (
	exitClean      = 0
	exitViolations = 1
	exitLint       = 2
	exitUsage      = 3
	exitFail       = 4
	exitDegraded   = 5
)

func main() {
	// SIGINT/SIGTERM take the same cooperative fail-soft cancellation path
	// as -timeout: the engine stops at the next per-victim checkpoint and
	// the process exits with the failure discipline (code 4) instead of
	// being killed mid-analysis.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sna", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netPath   = fs.String("net", "", "netlist file (.net or .v), required")
		spefPath  = fs.String("spef", "", "parasitics file (.spef)")
		libPath   = fs.String("lib", "", "cell library (.nlib); default: built-in generic")
		winPath   = fs.String("win", "", "input timing file (.win)")
		modeFlag  = fs.String("mode", "noise", "combination policy: all | timing | noise")
		threshold = fs.Float64("threshold", 0, "aggressor coupling-ratio filter threshold")
		dump      = fs.String("dump", "", "comma-separated nets to dump in detail")
		noProp    = fs.Bool("noprop", false, "disable noise propagation through gates")
		repair    = fs.Bool("repair", false, "suggest a physical fix per violation")
		corr      = fs.Bool("corr", false, "enable logic-correlation aggressor filtering")
		delay     = fs.Bool("delay", false, "also run crosstalk delta-delay analysis")
		iterate   = fs.Bool("iterate", false, "run the joint noise-timing fixpoint loop")
		slacks    = fs.Int("slacks", 0, "also print the N tightest receiver noise margins")
		period    = fs.Float64("period", 0, "clock period in seconds; enables timing slacks in the delta-delay report")
		jsonOut   = fs.String("json", "", "write the full result as JSON to this file")
		lintOnly  = fs.Bool("lint-only", false, "run the lint pre-flight and stop")
		werror    = fs.Bool("werror", false, "treat lint warnings as errors")
		suppress  = fs.String("suppress", "", "comma-separated lint rule IDs to suppress")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the analysis; 0 = unbounded")
		failFast  = fs.Bool("fail-fast", false, "abort on the first per-net analysis failure instead of degrading")
		faultSpec = fs.String("inject-fault", "", "inject runtime faults, e.g. panic:b1,error:b2,sleep:* (testing)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		workers   = fs.Int("workers", 0, "parallel analysis workers (0 = serial); results are identical")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "sna:", err)
		return exitUsage
	}
	defer stopProf()
	if *netPath == "" {
		fmt.Fprintln(stderr, "sna: -net is required")
		return exitUsage
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(stderr, "sna:", err)
		return exitUsage
	}
	lintCfg, err := lintConfig(*suppress, *werror)
	if err != nil {
		fmt.Fprintln(stderr, "sna:", err)
		return exitUsage
	}
	faults, err := workload.ParseRuntimeFaults(*faultSpec)
	if err != nil {
		fmt.Fprintln(stderr, "sna:", err)
		return exitUsage
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fail := func(err error) int {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(stderr, "sna: analysis cancelled: %s deadline exceeded\n", *timeout)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(stderr, "sna: interrupted: analysis cancelled by signal")
		default:
			fmt.Fprintln(stderr, "sna:", err)
		}
		return exitFail
	}
	lib := liberty.Generic()
	if *libPath != "" {
		if lib, err = loadLibrary(*libPath); err != nil {
			return fail(err)
		}
	}
	design, err := loadNetlist(*netPath, lib)
	if err != nil {
		return fail(err)
	}
	var paras *spef.Parasitics
	if *spefPath != "" {
		if paras, err = loadSPEF(*spefPath); err != nil {
			return fail(err)
		}
	}
	var inputs map[string]*sta.Timing
	if *winPath != "" {
		if inputs, err = loadTiming(*winPath); err != nil {
			return fail(err)
		}
	}

	// Lint pre-flight: always runs; error findings gate the analysis.
	lres := lint.Run(&lint.Input{Design: design, Lib: lib, Paras: paras, Inputs: inputs}, lintCfg)
	if *lintOnly {
		report.Lint(stdout, lres)
		if lres.HasErrors() {
			return exitLint
		}
		return exitClean
	}
	if lres.HasErrors() {
		report.Lint(stderr, lres)
		fmt.Fprintln(stderr, "sna: design rejected by lint; fix the errors above or suppress the rules (-suppress)")
		return exitLint
	}
	if lres.Warnings() > 0 {
		report.Lint(stderr, lres)
	}

	b, err := bind.New(design, lib, paras)
	if err != nil {
		return fail(err)
	}
	opts := core.Options{
		Mode:             mode,
		Workers:          *workers,
		FilterThreshold:  *threshold,
		NoPropagation:    *noProp,
		LogicCorrelation: *corr,
		FailSoft:         !*failFast,
		PrepareHook:      faults.Hook(),
		STA:              sta.Options{InputTiming: inputs, ClockPeriod: *period},
	}
	var res *core.Result
	if *iterate {
		iter, err := core.AnalyzeIterativeCtx(ctx, b, opts, 0)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "noise-timing loop: %d rounds, converged=%v, max window padding %s\n",
			iter.Rounds, iter.Converged, report.SI(iter.MaxPadding(), "s"))
		if iter.Diverging {
			fmt.Fprintf(stdout, "noise-timing loop diverging: %s\n", iter.DivergeReason)
		}
		res = iter.Noise
	} else {
		if res, err = core.AnalyzeCtx(ctx, b, opts); err != nil {
			return fail(err)
		}
	}
	report.Violations(stdout, res)
	report.Degradations(stdout, res.Diags)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return fail(err)
		}
		if err := report.WriteJSON(f, res); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	if *slacks > 0 {
		report.SlackTable(stdout, res, *slacks)
	}
	if *repair && len(res.Violations) > 0 {
		repairs, err := core.SuggestRepairs(b, res, 0.05)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "suggested repairs (5% margin):")
		for _, r := range repairs {
			fmt.Fprintln(stdout, "  "+r.Describe())
		}
	}
	if *delay {
		if err := runDelay(ctx, stdout, b, res, opts, *period); err != nil {
			return fail(err)
		}
	}
	if *dump != "" {
		for _, name := range strings.Split(*dump, ",") {
			name = strings.TrimSpace(name)
			nn := res.NoiseOf(name)
			if nn == nil {
				fmt.Fprintf(stdout, "net %s: not analyzed\n", name)
				continue
			}
			report.NetSummary(stdout, nn)
		}
	}
	if len(res.Violations) > 0 {
		return exitViolations
	}
	// A run with degraded nets and no violations is NOT clean: the
	// degraded victims were never actually analyzed, so signoff must
	// distinguish "checked and passed" from "gave up conservatively".
	if len(res.Diags) > 0 {
		return exitDegraded
	}
	return exitClean
}

func runDelay(ctx context.Context, stdout io.Writer, b *bind.Design, res *core.Result, opts core.Options, period float64) error {
	dres, err := core.AnalyzeDelayCtx(ctx, b, opts)
	if err != nil {
		return err
	}
	cols := []string{"net", "edge", "noise", "delta", "members"}
	if period > 0 {
		cols = append(cols, "slack-before", "slack-after")
	}
	t := report.NewTable(
		fmt.Sprintf("crosstalk delta-delay (%s): %d impacted edges, worst %s",
			dres.Mode, len(dres.Impacts), report.SI(dres.WorstDelta(), "s")),
		cols...)
	limit := 20
	for i, im := range dres.Impacts {
		if i == limit {
			t.AddRow("...")
			break
		}
		edge := "fall"
		if im.Rise {
			edge = "rise"
		}
		row := []string{im.Net, edge, report.SI(im.NoisePeak, "V"),
			report.SI(im.Delta, "s"), strings.Join(im.Members, "+")}
		if period > 0 {
			if slack, ok := res.STA.TimingSlack(im.Net); ok {
				row = append(row, report.SI(slack, "s"), report.SI(slack-im.Delta, "s"))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.AddRow(row...)
	}
	t.Render(stdout)
	return nil
}

// lintConfig builds the lint configuration from the CLI flags, validating
// suppressed rule IDs against the registry so typos surface as usage
// errors instead of silently suppressing nothing.
func lintConfig(suppress string, werror bool) (lint.Config, error) {
	cfg := lint.Config{Werror: werror}
	if suppress == "" {
		return cfg, nil
	}
	known := make(map[string]bool)
	for _, r := range lint.Rules() {
		known[r.ID()] = true
	}
	cfg.Suppress = make(map[string]bool)
	for _, id := range strings.Split(suppress, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !known[id] {
			return cfg, fmt.Errorf("unknown lint rule %q in -suppress", id)
		}
		cfg.Suppress[id] = true
	}
	return cfg, nil
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "all":
		return core.ModeAllAggressors, nil
	case "timing":
		return core.ModeTimingWindows, nil
	case "noise":
		return core.ModeNoiseWindows, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want all|timing|noise)", s)
}

// loadNetlist accepts both the native .net format and structural Verilog
// (by .v extension), resolving pin directions against the library.
func loadNetlist(path string, lib *liberty.Library) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".v") {
		return vlog.Parse(f, lib)
	}
	return netlist.Parse(f)
}

func loadLibrary(path string) (*liberty.Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return liberty.Parse(f)
}

func loadSPEF(path string) (*spef.Parasitics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return spef.Parse(f)
}

func loadTiming(path string) (map[string]*sta.Timing, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sta.ParseInputTiming(f)
}
