// netgen generates synthetic crosstalk workloads — coupled buses, random
// logic fabrics, driver chains, and star clusters — as a netlist (.net),
// parasitics (.spef), and input timing (.win) triple consumable by sna.
//
// Usage:
//
//	netgen -kind bus    -bits 32 -segs 2 -sep 100e-12 -width 80e-12 -out bus32
//	netgen -kind fabric -fwidth 16 -levels 10 -seed 7 -out fab
//	netgen -kind chain  -depth 8 -out chain8
//	netgen -kind star   -aggressors 4 -sep 50e-12 -width 40e-12 -out star4
//	netgen -kind scale  -nets 100000 -out rung100k
//
// Writes <out>.net, <out>.spef, and <out>.win.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/interval"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
	"repro/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "bus", "workload kind: bus | fabric | chain | star | scale")
		out      = flag.String("out", "design", "output file prefix")
		bits     = flag.Int("bits", 16, "bus: number of lines")
		segs     = flag.Int("segs", 2, "bus: RC segments per line")
		sep      = flag.Float64("sep", 100e-12, "bus/star: window stagger between lines, seconds")
		width    = flag.Float64("width", 80e-12, "bus/star: window width, seconds")
		random   = flag.Bool("random", false, "bus: scatter windows randomly instead of staggering")
		coupleC  = flag.Float64("couplec", 0, "bus: coupling cap per segment, farads (0 = default)")
		groundC  = flag.Float64("groundc", 0, "bus: ground cap per segment, farads (0 = default)")
		phaseGap = flag.Float64("phasegap", 0, "bus: second switching phase this long after the first, seconds")
		shield   = flag.Int("shield", 0, "bus: insert a grounded shield after every Nth line (0 = none)")
		fwidth   = flag.Int("fwidth", 12, "fabric: signals per rank")
		levels   = flag.Int("levels", 8, "fabric: gate ranks")
		depth    = flag.Int("depth", 8, "chain: gate stages")
		aggs     = flag.Int("aggressors", 4, "star: aggressor count")
		nets     = flag.Int("nets", 10000, "scale: target total net count")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "net", "netlist format: net | verilog")
		defects  = flag.String("inject-defects", "", "comma-separated defects to plant for lint testing (see workload.DefectNames; \"all\" for every kind)")
	)
	flag.Parse()

	g, err := generate(genParams{
		kind: *kind, bits: *bits, segs: *segs,
		sep: *sep, width: *width, random: *random,
		fwidth: *fwidth, levels: *levels, depth: *depth, aggs: *aggs, nets: *nets,
		seed: *seed, coupleC: *coupleC, groundC: *groundC,
		phaseGap: *phaseGap, shield: *shield,
	})
	if err != nil {
		fatal(err)
	}
	if *defects != "" {
		d, err := workload.ParseDefects(*defects)
		if err != nil {
			fatal(err)
		}
		if err := g.Inject(d); err != nil {
			fatal(err)
		}
		fmt.Printf("injected defects: %s\n", *defects)
	}
	if err := writeAll(*out, g, *format); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s.net (%d insts, %d nets), %s.spef (%d nets), %s.win (%d inputs)\n",
		*out, g.Design.NumInsts(), g.Design.NumNets(),
		*out, g.Paras.NumNets(), *out, len(g.Inputs))
}

// genParams carries the flag values to the workload constructors.
type genParams struct {
	kind             string
	bits, segs       int
	sep, width       float64
	random           bool
	fwidth, levels   int
	depth, aggs      int
	nets             int
	seed             int64
	coupleC, groundC float64
	phaseGap         float64
	shield           int
}

func generate(p genParams) (*workload.Generated, error) {
	switch p.kind {
	case "bus":
		return workload.Bus(workload.BusSpec{
			Bits: p.bits, Segs: p.segs,
			CoupleC: p.coupleC, GroundC: p.groundC,
			WindowSep: p.sep, WindowWidth: p.width,
			RandomWindows: p.random, Seed: p.seed,
			PhaseGap: p.phaseGap, ShieldEvery: p.shield,
		})
	case "fabric":
		return workload.Fabric(workload.FabricSpec{Width: p.fwidth, Levels: p.levels, Seed: p.seed})
	case "chain":
		return workload.Chain(workload.ChainSpec{Depth: p.depth})
	case "scale":
		return workload.Scale(workload.ScaleSpec{Nets: p.nets, Seed: p.seed})
	case "star":
		ws := make([]interval.Window, p.aggs)
		for i := range ws {
			lo := float64(i) * p.sep
			// Float flags parse "NaN"; interval.New panics on it, so turn a
			// bad -sep/-width into a usage error instead of a crash.
			if math.IsNaN(lo) || math.IsNaN(lo+p.width) {
				return nil, fmt.Errorf("netgen: star windows must be finite (-sep/-width)")
			}
			ws[i] = interval.New(lo, lo+p.width)
		}
		return workload.Star(workload.StarSpec{Windows: ws})
	}
	return nil, fmt.Errorf("netgen: unknown kind %q", p.kind)
}

func writeAll(prefix string, g *workload.Generated, format string) error {
	switch format {
	case "net":
		if err := writeFile(prefix+".net", func(f *os.File) error {
			return netlist.Write(f, g.Design)
		}); err != nil {
			return err
		}
	case "verilog":
		if err := writeFile(prefix+".v", func(f *os.File) error {
			return vlog.Write(f, g.Design)
		}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("netgen: unknown format %q (want net|verilog)", format)
	}
	if err := writeFile(prefix+".spef", func(f *os.File) error {
		return spef.Write(f, g.Paras)
	}); err != nil {
		return err
	}
	return writeFile(prefix+".win", func(f *os.File) error {
		return sta.WriteInputTiming(f, g.Inputs)
	})
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
