package main

// Distributed-analysis acceptance test: a coordinator snad process with a
// fleet of three worker snad processes, one of which is SIGKILLed while
// the fixpoint is in flight. The run must always terminate with a sound
// report — byte-identical to the single-process oracle when the shards
// were re-hosted in time, or carrying explicit degradation records when
// they were abandoned — and the CLI exit code must tell the two apart.

import (
	"context"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

func TestDistributedIterateSurvivesWorkerSIGKILL(t *testing.T) {
	ctx := context.Background()

	// Three worker processes; the coordinator registers them at boot.
	var urls []string
	var kill func() // SIGKILLs worker 1
	for i := 0; i < 3; i++ {
		cmd, base := startChild(t, t.TempDir())
		urls = append(urls, base)
		if i == 1 {
			proc, wait := cmd.Process, cmd.Wait
			kill = func() {
				proc.Signal(syscall.SIGKILL)
				wait()
			}
		}
	}
	_, coordBase := startChild(t, t.TempDir(), "-workers", strings.Join(urls, ","))

	c := client.New(coordBase, client.RetryPolicy{MaxAttempts: 1})
	netPath, spefPath, winPath := writeBus(t, t.TempDir(), 16)
	mustRead := func(p string) string {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if _, err := c.CreateSession(ctx, &server.CreateSessionRequest{
		Name: "bus", Netlist: mustRead(netPath), SPEF: mustRead(spefPath), Timing: mustRead(winPath),
	}); err != nil {
		t.Fatal(err)
	}

	// The oracle, and the exit code a healthy run earns.
	var oracleOut, oracleErr strings.Builder
	oracleCode := run(ctx, []string{"iterate", "-server", coordBase, "-name", "bus", "-delay", "-local"}, &oracleOut, &oracleErr)
	if oracleCode != exitClean && oracleCode != exitViolations {
		t.Fatalf("local oracle failed: exit %d\n%s%s", oracleCode, oracleOut.String(), oracleErr.String())
	}

	// Fire the distributed iterate through the real CLI and SIGKILL
	// worker 1 while it runs. The kill races the run on purpose: landing
	// before, during, or after, the invariant is the same — a sound
	// terminating report, never a failure.
	var out, errb strings.Builder
	var code int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code = run(ctx, []string{"iterate", "-server", coordBase, "-name", "bus", "-delay", "-shards", "3"}, &out, &errb)
	}()
	time.Sleep(20 * time.Millisecond)
	kill()
	wg.Wait()

	if code == exitUsage || code == exitFail {
		t.Fatalf("distributed iterate failed outright: exit %d\n%s%s", code, out.String(), errb.String())
	}
	if code != oracleCode && code != exitDegraded {
		t.Fatalf("exit %d, want the oracle's %d (full recovery) or %d (degraded-clean)\n%s%s",
			code, oracleCode, exitDegraded, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "distributed over 3 worker(s)") {
		t.Fatalf("run did not go distributed:\n%s%s", out.String(), errb.String())
	}
	if strings.Contains(out.String(), "degraded to conservative full-rail") && code == exitClean {
		// Abandonment must be loud and must not report clean.
		t.Fatalf("abandoned shards but exit 0:\n%s", out.String())
	}

	// The fleet endpoint must answer regardless of the dead worker.
	var wout, werrb strings.Builder
	if wcode := run(ctx, []string{"workers", "-server", coordBase}, &wout, &werrb); wcode != exitClean {
		t.Fatalf("workers subcommand: exit %d: %s%s", wcode, wout.String(), werrb.String())
	}
	if got := strings.Count(wout.String(), "\n"); got != 3 {
		t.Fatalf("workers listed %d entries, want 3:\n%s", got, wout.String())
	}
}
