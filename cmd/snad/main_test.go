package main

import (
	"bytes"
	"context"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netlist"
	"repro/internal/server"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// safeBuffer is a mutex-guarded buffer: serve's goroutine writes while
// the test polls.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// writeBus serializes a generated coupled bus into files for the create
// subcommand.
func writeBus(t *testing.T, dir string, bits int) (netPath, spefPath, winPath string) {
	t.Helper()
	g, err := workload.Bus(workload.BusSpec{Bits: bits, Segs: 2, WindowWidth: 80 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	netPath = filepath.Join(dir, "bus.net")
	spefPath = filepath.Join(dir, "bus.spef")
	winPath = filepath.Join(dir, "bus.win")
	for _, w := range []struct {
		path  string
		write func(f *os.File) error
	}{
		{netPath, func(f *os.File) error { return netlist.Write(f, g.Design) }},
		{spefPath, func(f *os.File) error { return spef.Write(f, g.Paras) }},
		{winPath, func(f *os.File) error { return sta.WriteInputTiming(f, g.Inputs) }},
	} {
		f, err := os.Create(w.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return netPath, spefPath, winPath
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startServe launches `snad serve` in-process on an ephemeral port under a
// real signal context and returns its base URL and exit-code channel.
// Sending SIGTERM/SIGINT to the test process drives the drain path exactly
// as in production.
func startServe(t *testing.T, extra ...string) (base string, exit chan int, stdout *safeBuffer) {
	t.Helper()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	t.Cleanup(stop)
	stdout = &safeBuffer{}
	stderr := &safeBuffer{}
	args := append([]string{"serve", "-listen", "127.0.0.1:0"}, extra...)
	exit = make(chan int, 1)
	go func() { exit <- run(ctx, args, stdout, stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case code := <-exit:
			t.Fatalf("serve exited early with %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never reported its address\nstderr: %s", stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	c := client.New(base, client.RetryPolicy{})
	wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.WaitReady(wctx); err != nil {
		t.Fatal(err)
	}
	return base, exit, stdout
}

// waitInflight polls until the server reports an analysis in flight.
func waitInflight(t *testing.T, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health(context.Background())
		if err == nil && h.Inflight > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no request ever entered flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeSIGTERMCleanDrain is the acceptance test for graceful
// shutdown: a real SIGTERM during in-flight work lets the request finish
// within the drain budget and the process exits 0.
func TestServeSIGTERMCleanDrain(t *testing.T) {
	base, exit, stdout := startServe(t, "-drain-budget", "30s", "-quiet")
	c := client.New(base, client.RetryPolicy{MaxAttempts: 1})

	netPath, spefPath, winPath := writeBus(t, t.TempDir(), 4)
	mustRead := func(p string) string {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if _, err := c.CreateSession(context.Background(), &server.CreateSessionRequest{
		Name:    "slow",
		Netlist: mustRead(netPath),
		SPEF:    mustRead(spefPath),
		Timing:  mustRead(winPath),
		Options: server.SessionOptions{InjectFault: "sleep:*"},
	}); err != nil {
		t.Fatal(err)
	}

	analyzeDone := make(chan error, 1)
	go func() {
		_, err := c.Analyze(context.Background(), "slow", nil, 0)
		analyzeDone <- err
	}()
	waitInflight(t, c)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != exitClean {
			t.Fatalf("serve exit = %d, want %d (clean drain)\n%s", code, exitClean, stdout.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
	if err := <-analyzeDone; err != nil {
		t.Fatalf("in-flight analyze should finish during a clean drain: %v", err)
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}

// TestServeSIGINTForcedDrain: when in-flight work exceeds the budget, the
// drain cancels it and the process exits 1.
func TestServeSIGINTForcedDrain(t *testing.T) {
	base, exit, _ := startServe(t, "-drain-budget", "20ms", "-quiet")
	c := client.New(base, client.RetryPolicy{MaxAttempts: 1})

	// A 16-bit bus with 10ms per-net sleeps is far more work than the
	// 20ms budget.
	netPath, spefPath, winPath := writeBus(t, t.TempDir(), 16)
	mustRead := func(p string) string {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if _, err := c.CreateSession(context.Background(), &server.CreateSessionRequest{
		Name:    "glacial",
		Netlist: mustRead(netPath),
		SPEF:    mustRead(spefPath),
		Timing:  mustRead(winPath),
		Options: server.SessionOptions{InjectFault: "sleep:*"},
	}); err != nil {
		t.Fatal(err)
	}
	analyzeDone := make(chan error, 1)
	go func() {
		_, err := c.Analyze(context.Background(), "glacial", nil, 0)
		analyzeDone <- err
	}()
	waitInflight(t, c)

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != exitForced {
			t.Fatalf("serve exit = %d, want %d (forced drain)", code, exitForced)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after SIGINT")
	}
	// The cancelled in-flight request surfaced as a structured error, not
	// a hang.
	select {
	case err := <-analyzeDone:
		if err == nil {
			t.Fatal("cancelled analyze should report an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled analyze never returned")
	}
}

// TestClientSubcommands drives the full CLI surface against an in-process
// server.
func TestClientSubcommands(t *testing.T) {
	base, exit, _ := startServe(t, "-quiet")
	netPath, spefPath, winPath := writeBus(t, t.TempDir(), 4)

	runCmd := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := run(context.Background(), args, &out, &errb)
		return code, out.String(), errb.String()
	}

	code, out, errOut := runCmd("create", "-server", base, "-name", "bus",
		"-net", netPath, "-spef", spefPath, "-win", winPath)
	if code != exitClean {
		t.Fatalf("create: exit %d: %s%s", code, out, errOut)
	}

	code, out, errOut = runCmd("analyze", "-server", base, "-name", "bus")
	if code != exitClean && code != exitViolations {
		t.Fatalf("analyze: exit %d: %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "victims") {
		t.Fatalf("analyze output: %s", out)
	}

	code, out, errOut = runCmd("reanalyze", "-server", base, "-name", "bus", "-pad", "b1=3e-12")
	if code != exitClean && code != exitViolations {
		t.Fatalf("reanalyze: exit %d: %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "net(s) changed") {
		t.Fatalf("reanalyze output: %s", out)
	}

	code, out, _ = runCmd("report", "-server", base, "-name", "bus")
	if code != exitClean || !strings.Contains(out, "\"session\": \"bus\"") {
		t.Fatalf("report: exit %d: %s", code, out)
	}

	code, out, _ = runCmd("list", "-server", base)
	if code != exitClean || !strings.Contains(out, "bus:") {
		t.Fatalf("list: exit %d: %s", code, out)
	}

	code, out, _ = runCmd("health", "-server", base)
	if code != exitClean || !strings.Contains(out, "status=ok") {
		t.Fatalf("health: exit %d: %s", code, out)
	}

	code, out, _ = runCmd("delete", "-server", base, "-name", "bus")
	if code != exitClean {
		t.Fatalf("delete: exit %d: %s", code, out)
	}
	// Deleting again is a structured failure.
	code, _, errOut = runCmd("delete", "-server", base, "-name", "bus")
	if code != exitFail || !strings.Contains(errOut, "not_found") {
		t.Fatalf("double delete: exit %d: %s", code, errOut)
	}

	// A degraded session maps onto the degraded-clean exit code.
	code, _, errOut = runCmd("create", "-server", base, "-name", "flaky",
		"-net", netPath, "-spef", spefPath, "-win", winPath, "-inject-fault", "panic:b1")
	if code != exitClean {
		t.Fatalf("create flaky: exit %d: %s", code, errOut)
	}
	code, out, errOut = runCmd("analyze", "-server", base, "-name", "flaky")
	if code != exitDegraded && code != exitViolations {
		t.Fatalf("degraded analyze: exit %d: %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "DEGRADED b1") {
		t.Fatalf("degraded analyze output: %s", out)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-exit; code != exitClean {
		t.Fatalf("idle drain exit = %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	runCmd := func(args ...string) int {
		var out, errb bytes.Buffer
		return run(context.Background(), args, &out, &errb)
	}
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"analyze"},                 // missing -name
		{"create", "-name", "x"},    // missing -net
		{"reanalyze", "-name", "x"}, // missing -pad
		{"serve", "-listen"},        // bad flag usage
		{"reanalyze", "-name", "x", "-pad", "b1=-3"}, // negative padding
	} {
		if code := runCmd(args...); code != exitUsage {
			t.Fatalf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}
