// snad is the static noise analysis daemon: a long-running HTTP/JSON
// service that loads designs into named sessions — each holding the
// persistent incremental analyzer warm — and serves analyze,
// delta-reanalyze, and report queries. The binary is both the server
// (`snad serve`) and a thin CLI over the retrying client for every
// endpoint (`snad create|analyze|reanalyze|report|list|delete|health`).
//
// Usage:
//
//	snad serve   [-listen 127.0.0.1:8347] [-max-sessions 8]
//	             [-max-concurrent N] [-queue N] [-max-timeout 30s]
//	             [-drain-budget 10s] [-breaker-trips 3]
//	             [-breaker-cooldown 10s] [-data-dir DIR]
//	             [-compact-every 64]
//	             [-workers url1,url2,...] [-shards N]
//	             [-job-workers 2] [-job-queue 16] [-job-max-attempts 3]
//	             [-job-deadline 5m]
//	             [-mem-budget 512MB] [-tenant-cap N] [-job-tenant-cap N]
//	snad create  -server URL -name S -net design.net [-spef design.spef]
//	             [-lib lib.nlib] [-win design.win] [-mode all|timing|noise]
//	             [-threshold 0.02] [-corr] [-noprop] [-workers N]
//	             [-fail-fast] [-inject-fault spec]
//	snad analyze -server URL -name S [-delay] [-timeout 10s]
//	snad iterate -server URL -name S [-delay] [-max-rounds 8] [-shards N]
//	             [-local] [-timeout 60s]
//	snad reanalyze -server URL -name S -pad net=3e-12,net2=5e-12 [-delay]
//	snad report  -server URL -name S
//	snad list    -server URL
//	snad delete  -server URL -name S
//	snad health  -server URL
//	snad recovery -server URL
//	snad submit  -server URL -name S -type analyze|reanalyze|iterate|sweep
//	             [-delay] [-pad net=3e-12,...] [-max-rounds 8] [-shards N]
//	             [-local] [-sweep mode:threshold,...] [-deadline 90s]
//	             [-max-attempts 3] [-wait] [-json]
//	snad jobs    -server URL [-state queued|running|done|failed|canceled|quarantined] [-json]
//	snad job     -server URL -id job-000001 [-wait] [-json]
//	snad cancel  -server URL -id job-000001
//
// submit enqueues an asynchronous job: the 202 is written only after the
// job spec is journaled (with -data-dir), so an acknowledged job survives
// a crash — in-flight jobs are re-enqueued at the next boot and iterate
// jobs resume from their last round checkpoint. Jobs that panic or
// degrade the engine on every attempt are quarantined as failed poison
// jobs with per-attempt diagnostics instead of retrying forever.
//
// With -data-dir, session lifecycle (creates, reanalyze padding, deletes)
// is journaled to disk before it is acknowledged and replayed on the next
// boot: sessions survive restarts and crashes, corrupt records are
// quarantined into DIR/quarantine with a reason instead of refusing the
// boot, and `snad recovery` reports what the last boot restored and
// quarantined.
//
// With -workers, the server is also a coordinator: the listed snad
// processes are registered as shard workers (heartbeat-probed), and
// `snad iterate` fans the joint noise–delay fixpoint out across them,
// surviving worker loss by re-hosting shards and, when every worker is
// gone, degrading to conservative full-rail results rather than failing.
// Any plain `snad serve` can be a worker — shard engines are built from
// specs the coordinator ships, not from pre-loaded sessions.
//
// The server sheds load instead of queueing it unboundedly: past its
// concurrency cap and bounded queue, requests get 429 with a Retry-After
// hint. With -mem-budget, sessions over identical sources share one
// cached bound design and creates that would exceed the budget shed with
// 503 "budget" instead of growing without bound. Requests tagged with a
// tenant ID (-tenant on client commands, or the X-Snad-Tenant header)
// are scheduled round-robin across tenants, so one bulk tenant cannot
// starve interactive users. The client commands absorb shedding with
// exponential backoff and jitter. SIGTERM/SIGINT starts a graceful
// drain: the listener stops
// accepting, in-flight analyses get -drain-budget to finish, and whatever
// remains is cancelled through the engine's cooperative-cancellation path.
//
// Exit codes for serve:
//
//	0  clean drain: every in-flight request finished within the budget
//	1  forced drain: in-flight work had to be cancelled
//	3  usage error (bad flags)
//	4  startup failure (listen error) or server crash
//
// Client commands reuse the sna discipline where it applies: 0 clean,
// 1 violations (analyze/reanalyze), 3 usage, 4 request failure,
// 5 degraded-clean (no violations but degraded nets — incomplete, not
// clean).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/shard"
)

const (
	exitClean      = 0
	exitViolations = 1 // client analyze: violations; serve: forced drain
	exitForced     = 1
	exitUsage      = 3
	exitFail       = 4
	exitDegraded   = 5
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "snad: a subcommand is required: serve | create | analyze | iterate | reanalyze | report | list | delete | health | recovery | workers | submit | jobs | job | cancel")
		return exitUsage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return runServe(ctx, rest, stdout, stderr)
	case "create", "analyze", "iterate", "reanalyze", "report", "list", "delete", "health", "recovery", "workers":
		return runClient(ctx, cmd, rest, stdout, stderr)
	case "submit", "jobs", "job", "cancel":
		return runJobs(ctx, cmd, rest, stdout, stderr)
	}
	fmt.Fprintf(stderr, "snad: unknown subcommand %q\n", cmd)
	return exitUsage
}

// runServe starts the daemon and blocks until a signal (or server crash),
// then performs the graceful drain.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snad serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", "127.0.0.1:8347", "listen address")
		maxSessions  = fs.Int("max-sessions", 0, "max loaded sessions; LRU-evicted past this (default 8)")
		maxConc      = fs.Int("max-concurrent", 0, "max concurrent analyses (default GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "max queued requests past the concurrency cap (default 2x)")
		maxTimeout   = fs.Duration("max-timeout", 0, "server-side cap on one request's analysis deadline (default 30s)")
		drainBudget  = fs.Duration("drain-budget", 10*time.Second, "grace period for in-flight work on shutdown")
		trips        = fs.Int("breaker-trips", 0, "consecutive degraded results that trip a session breaker (default 3)")
		cooldown     = fs.Duration("breaker-cooldown", 0, "breaker cooldown before going half-open (default 10s)")
		quiet        = fs.Bool("quiet", false, "suppress operational logging")
		dataDir      = fs.String("data-dir", "", "durable session directory; empty runs memory-only")
		compactEvery = fs.Int("compact-every", 0, "journal records between compactions (default 64)")
		storeFaults  = fs.String("store-inject-fault", "", "inject store write-path faults, e.g. torn:append:2 (chaos testing)")
		workerURLs   = fs.String("workers", "", "comma-separated snad worker base URLs to coordinate over")
		shards       = fs.Int("shards", 0, "default shard count for distributed iterate (0 = one per worker)")
		jobWorkers   = fs.Int("job-workers", 0, "async job worker pool size (default 2)")
		jobQueue     = fs.Int("job-queue", 0, "max queued async jobs; submits past it are shed (default 16)")
		jobKeep      = fs.Int("job-keep-done", 0, "terminal jobs retained for status queries (default 64)")
		jobAttempts  = fs.Int("job-max-attempts", 0, "default retry budget per async job (default 3)")
		jobDeadline  = fs.Duration("job-deadline", 0, "default per-attempt execution budget per async job (default 5m)")
		jobFaults    = fs.String("job-inject-fault", "", "inject job execution faults, e.g. panic:analyze:2 (chaos testing)")
		memBudget    = fs.String("mem-budget", "", "byte budget for cached designs, e.g. 512MB or 2GiB (empty = unlimited); past it, creates shed with 503 instead of growing")
		tenantCap    = fs.Int("tenant-cap", 0, "max concurrent analyses per tenant (0 = the concurrency cap)")
		jobTenantCap = fs.Int("job-tenant-cap", 0, "max concurrently running async jobs per tenant (0 = the job worker count)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "snad: "+format+"\n", a...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		fmt.Fprintln(stderr, "snad:", err)
		return exitUsage
	}
	srv, err := server.New(server.Config{
		MaxSessions:       *maxSessions,
		MaxConcurrent:     *maxConc,
		QueueDepth:        *queue,
		MaxRequestTimeout: *maxTimeout,
		BreakerTrips:      *trips,
		BreakerCooldown:   *cooldown,
		Logf:              logf,
		DataDir:           *dataDir,
		CompactEvery:      *compactEvery,
		StoreFaultSpec:    *storeFaults,
		Shards:            *shards,
		JobWorkers:        *jobWorkers,
		JobQueueDepth:     *jobQueue,
		JobKeepDone:       *jobKeep,
		JobMaxAttempts:    *jobAttempts,
		JobDeadline:       *jobDeadline,
		JobFaultSpec:      *jobFaults,
		MemBudget:         budget,
		TenantCap:         *tenantCap,
		JobTenantCap:      *jobTenantCap,
		// The dialer lives here because the server package cannot import
		// the client (the client imports the server's wire types).
		WorkerDialer: func(name, url string) shard.Worker {
			return client.NewShardWorker(name, url, client.RetryPolicy{})
		},
	})
	if err != nil {
		// Only a structurally unusable data directory gets here; corrupt
		// durable state is quarantined and the server boots anyway.
		fmt.Fprintln(stderr, "snad:", err)
		return exitFail
	}
	defer srv.Close()
	for _, u := range strings.Split(*workerURLs, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if _, err := srv.RegisterWorker("", u); err != nil {
			fmt.Fprintln(stderr, "snad:", err)
			return exitUsage
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "snad:", err)
		return exitFail
	}
	// The bound address line is the startup handshake: scripts and tests
	// read it to learn the port when -listen used :0.
	fmt.Fprintf(stdout, "snad: listening on %s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "snad: server failed:", err)
		return exitFail
	case <-ctx.Done():
	}
	logf("shutdown signal received; draining (budget %s)", *drainBudget)
	clean := srv.Drain(*drainBudget)
	httpSrv.Close()
	if !clean {
		fmt.Fprintln(stderr, "snad: forced drain: in-flight work was cancelled")
		return exitForced
	}
	fmt.Fprintln(stdout, "snad: drained cleanly")
	return exitClean
}

// runClient dispatches the thin CLI wrappers over the retrying client.
func runClient(ctx context.Context, cmd string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snad "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8347", "snad server base URL")
		name      = fs.String("name", "", "session name")
		retries   = fs.Int("retries", 0, "max attempts for retryable failures (default 4)")
		timeout   = fs.Duration("timeout", 0, "per-request analysis deadline sent to the server")
		tenant    = fs.String("tenant", "", "tenant ID for fair scheduling (X-Snad-Tenant)")

		// create flags
		netPath   = fs.String("net", "", "netlist file (.net or .v)")
		spefPath  = fs.String("spef", "", "parasitics file (.spef)")
		libPath   = fs.String("lib", "", "cell library (.nlib); default: server's built-in generic")
		winPath   = fs.String("win", "", "input timing file (.win)")
		modeFlag  = fs.String("mode", "noise", "combination policy: all | timing | noise")
		threshold = fs.Float64("threshold", 0, "aggressor coupling-ratio filter threshold")
		noProp    = fs.Bool("noprop", false, "disable noise propagation through gates")
		corr      = fs.Bool("corr", false, "enable logic-correlation aggressor filtering")
		workers   = fs.Int("workers", 0, "parallel analysis workers (0 = serial)")
		failFast  = fs.Bool("fail-fast", false, "abort a request on the first per-net failure instead of degrading")
		faultSpec = fs.String("inject-fault", "", "inject runtime faults, e.g. panic:b1,sleep:* (testing)")

		// analyze/reanalyze flags
		delay = fs.Bool("delay", false, "include the crosstalk delta-delay section")
		pad   = fs.String("pad", "", "reanalyze padding: net=seconds[,net=seconds...]")

		// iterate flags
		maxRounds = fs.Int("max-rounds", 0, "bound on the noise-delay fixpoint rounds (default 8)")
		iterShard = fs.Int("shards", 0, "shard count for a distributed iterate (0 = server default)")
		local     = fs.Bool("local", false, "force a single-process iterate even when workers are registered")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	needName := cmd == "create" || cmd == "analyze" || cmd == "iterate" || cmd == "reanalyze" || cmd == "report" || cmd == "delete"
	if needName && *name == "" {
		fmt.Fprintln(stderr, "snad: -name is required")
		return exitUsage
	}
	c := client.New(*serverURL, client.RetryPolicy{MaxAttempts: *retries})
	c.SetTenant(*tenant)
	fail := func(err error) int {
		fmt.Fprintln(stderr, "snad:", err)
		return exitFail
	}
	switch cmd {
	case "create":
		if *netPath == "" {
			fmt.Fprintln(stderr, "snad: -net is required")
			return exitUsage
		}
		req := &server.CreateSessionRequest{
			Name: *name,
			Options: server.SessionOptions{
				Mode:             *modeFlag,
				Threshold:        *threshold,
				NoPropagation:    *noProp,
				LogicCorrelation: *corr,
				Workers:          *workers,
				FailFast:         *failFast,
				InjectFault:      *faultSpec,
			},
		}
		text, err := os.ReadFile(*netPath)
		if err != nil {
			return fail(err)
		}
		if strings.HasSuffix(*netPath, ".v") {
			req.Verilog = string(text)
		} else {
			req.Netlist = string(text)
		}
		for _, f := range []struct {
			path string
			dst  *string
		}{{*spefPath, &req.SPEF}, {*libPath, &req.Liberty}, {*winPath, &req.Timing}} {
			if f.path == "" {
				continue
			}
			text, err := os.ReadFile(f.path)
			if err != nil {
				return fail(err)
			}
			*f.dst = string(text)
		}
		info, err := c.CreateSession(ctx, req)
		if err != nil {
			return clientFail(stderr, err)
		}
		fmt.Fprintf(stdout, "session %s created\n", info.Name)
		return exitClean
	case "analyze":
		resp, err := c.Analyze(ctx, *name, &server.AnalyzeRequest{Delay: *delay}, *timeout)
		if err != nil {
			return clientFail(stderr, err)
		}
		return printAnalysis(stdout, resp)
	case "iterate":
		resp, err := c.Iterate(ctx, *name, &server.IterateRequest{
			Delay:     *delay,
			MaxRounds: *maxRounds,
			Shards:    *iterShard,
			Local:     *local,
		}, *timeout)
		if err != nil {
			return clientFail(stderr, err)
		}
		if it := resp.Iterate; it != nil {
			mode := "local"
			if it.Distributed {
				mode = fmt.Sprintf("distributed over %d worker(s), %d shard(s)", it.Workers, it.Shards)
			}
			state := "converged"
			if !it.Converged {
				state = "did not converge"
			}
			if it.Diverging {
				state = "diverging: " + it.DivergeReason
			}
			fmt.Fprintf(stdout, "iterate %s: %d round(s), %s (%s)\n", *name, it.Rounds, state, mode)
			if it.Resumed {
				fmt.Fprintln(stdout, "  resumed from a persisted round checkpoint")
			}
			if it.Reassigns > 0 {
				fmt.Fprintf(stdout, "  %d shard re-hosting(s) after worker loss\n", it.Reassigns)
			}
			if len(it.AbandonedShards) > 0 {
				fmt.Fprintf(stdout, "  shards %v degraded to conservative full-rail results\n", it.AbandonedShards)
			}
		}
		code := printAnalysis(stdout, resp)
		// A diverging fixpoint is an incomplete answer, not a clean one.
		if code == exitClean && resp.Iterate != nil && !resp.Iterate.Converged {
			code = exitDegraded
		}
		return code
	case "reanalyze":
		padding, err := parsePadding(*pad)
		if err != nil {
			fmt.Fprintln(stderr, "snad:", err)
			return exitUsage
		}
		resp, err := c.Reanalyze(ctx, *name, &server.ReanalyzeRequest{Padding: padding, Delay: *delay}, *timeout)
		if err != nil {
			return clientFail(stderr, err)
		}
		fmt.Fprintf(stdout, "reanalyzed %s: %d net(s) changed\n", *name, resp.ChangedNets)
		return printAnalysis(stdout, resp)
	case "report":
		resp, err := c.Report(ctx, *name)
		if err != nil {
			return clientFail(stderr, err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
		return exitClean
	case "list":
		infos, err := c.List(ctx)
		if err != nil {
			return clientFail(stderr, err)
		}
		for _, info := range infos {
			state := "idle"
			if !info.Loaded {
				state = "on disk (reloads on access)"
			} else if info.Analyzed {
				state = fmt.Sprintf("%d victims, %d violations, %d degraded", info.Victims, info.Violations, info.DegradedNets)
			}
			if info.Breaker.Open {
				state += " [breaker open]"
			}
			if info.Suspect {
				state += " [suspect]"
			}
			if info.Restored {
				state += " [restored]"
			}
			fmt.Fprintf(stdout, "%s: %s\n", info.Name, state)
		}
		return exitClean
	case "delete":
		if err := c.Delete(ctx, *name); err != nil {
			return clientFail(stderr, err)
		}
		fmt.Fprintf(stdout, "session %s deleted\n", *name)
		return exitClean
	case "health":
		h, err := c.Health(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "status=%s sessions=%d inflight=%d\n", h.Status, h.Sessions, h.Inflight)
		return exitClean
	case "recovery":
		rec, err := c.Recovery(ctx)
		if err != nil {
			return clientFail(stderr, err)
		}
		report.RecoveryText(stdout, rec)
		return exitClean
	case "workers":
		ws, err := c.Workers(ctx)
		if err != nil {
			return clientFail(stderr, err)
		}
		if len(ws) == 0 {
			fmt.Fprintln(stdout, "no workers registered")
			return exitClean
		}
		for _, w := range ws {
			state := "healthy"
			if !w.Healthy {
				state = "unhealthy"
			}
			seen := w.LastSeenAt
			if seen == "" {
				seen = "not yet probed"
			}
			fmt.Fprintf(stdout, "%s: %s (%s, last seen %s)\n", w.Name, w.URL, state, seen)
		}
		return exitClean
	}
	return exitUsage
}

// clientFail renders a request failure, keeping the server's structured
// error kind visible for scripting.
func clientFail(stderr io.Writer, err error) int {
	if ae, ok := err.(*client.APIError); ok {
		fmt.Fprintf(stderr, "snad: %s: %s\n", ae.Info.Kind, ae.Info.Message)
		for _, d := range ae.Info.Lint {
			fmt.Fprintf(stderr, "snad:   [%s %s] %s: %s\n", d.Severity, d.Rule, d.Object, d.Message)
		}
		return exitFail
	}
	fmt.Fprintln(stderr, "snad:", err)
	return exitFail
}

// printAnalysis renders an analysis summary and maps it onto the sna exit
// discipline.
func printAnalysis(stdout io.Writer, resp *server.AnalyzeResponse) int {
	noise := resp.Noise
	rebuilt := ""
	if resp.Rebuilt {
		rebuilt = " (session rebuilt)"
	}
	fmt.Fprintf(stdout, "session %s: %d victims, %d violations, %d degraded%s\n",
		resp.Session, noise.Stats.Victims, len(noise.Violations), noise.Stats.DegradedNets, rebuilt)
	for _, v := range noise.Violations {
		at := "-"
		if v.At != nil {
			at = strconv.FormatFloat(*v.At, 'g', 4, 64) + "s"
		}
		fmt.Fprintf(stdout, "  VIOLATION %s @ %s (%s): peak %.4gV > limit %.4gV at %s [%s]\n",
			v.Net, v.Receiver, v.State, v.Peak, v.Limit, at, strings.Join(v.Members, "+"))
	}
	for _, d := range noise.Degradations {
		fmt.Fprintf(stdout, "  DEGRADED %s (%s): %s\n", d.Net, d.Stage, d.Error)
	}
	if resp.Delay != nil {
		fmt.Fprintf(stdout, "  delta-delay: %d impacted edges\n", len(resp.Delay.Impacts))
	}
	if len(noise.Violations) > 0 {
		return exitViolations
	}
	if noise.Stats.DegradedNets > 0 || len(noise.Degradations) > 0 {
		return exitDegraded
	}
	return exitClean
}

// parseBytes parses a human byte size: a plain integer, or one with a
// KB/MB/GB (decimal) or KiB/MiB/GiB (binary) suffix, case-insensitive.
// Empty means 0 (unlimited).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	suffixes := []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1e3}, {"mb", 1e6}, {"gb", 1e9},
		{"b", 1},
	}
	lower := strings.ToLower(s)
	mult := int64(1)
	num := lower
	for _, sf := range suffixes {
		if strings.HasSuffix(lower, sf.suffix) {
			mult = sf.mult
			num = strings.TrimSpace(strings.TrimSuffix(lower, sf.suffix))
			break
		}
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 1073741824, 512MB, or 2GiB)", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n * mult, nil
}

// parsePadding parses "net=seconds,net=seconds" into a padding map.
func parsePadding(spec string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		net, val, ok := strings.Cut(item, "=")
		if !ok || net == "" {
			return nil, fmt.Errorf("bad padding %q (want net=seconds)", item)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad padding value %q for net %q (want finite seconds >= 0)", val, net)
		}
		out[net] = f
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-pad is required (net=seconds[,net=seconds...])")
	}
	return out, nil
}
