package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/units"
)

// TestMain lets this test binary double as the snad executable: with
// SNAD_E2E_CHILD=1 in the environment it runs the real CLI entry point
// on its own arguments instead of the test suite. The SIGKILL recovery
// e2e uses this to kill a genuinely separate server process mid-traffic
// — an in-process server can't be SIGKILLed without killing the test.
func TestMain(m *testing.M) {
	if os.Getenv("SNAD_E2E_CHILD") == "1" {
		os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// startChild execs this test binary as `snad serve -data-dir dir` in a
// separate process and returns the process and its base URL. extra args
// are appended to the serve command line (e.g. -workers for a
// coordinator).
func startChild(t *testing.T, dir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"serve", "-listen", "127.0.0.1:0", "-data-dir", dir, "-quiet"}, extra...)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "SNAD_E2E_CHILD=1")
	out := &safeBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	var base string
	deadline := time.Now().Add(20 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child server never reported its address\noutput: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	c := client.New(base, client.RetryPolicy{})
	wctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.WaitReady(wctx); err != nil {
		t.Fatalf("child server never became ready: %v\noutput: %s", err, out.String())
	}
	return cmd, base
}

// TestServeSIGKILLRecovery is the end-to-end crash-recovery acceptance
// test: a separate server process is SIGKILLed — no drain, no Close —
// while creates and analyses are in flight, and a restart over the same
// data directory must serve every session the clients were told exists,
// with the same analysis results and cumulative padding.
func TestServeSIGKILLRecovery(t *testing.T) {
	dir := t.TempDir()
	child, base := startChild(t, dir)
	ctx := context.Background()
	c := client.New(base, client.RetryPolicy{MaxAttempts: 1})

	netPath, spefPath, winPath := writeBus(t, t.TempDir(), 4)
	mustRead := func(p string) string {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	netSrc, spefSrc, winSrc := mustRead(netPath), mustRead(spefPath), mustRead(winPath)

	if _, err := c.CreateSession(ctx, &server.CreateSessionRequest{
		Name: "bus", Netlist: netSrc, SPEF: spefSrc, Timing: winSrc,
	}); err != nil {
		t.Fatal(err)
	}
	pad := map[string]float64{"b1": 5 * units.Pico}
	padded, err := c.Reanalyze(ctx, "bus", &server.ReanalyzeRequest{Padding: pad}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if padded.ChangedNets == 0 {
		t.Fatal("padding changed nothing; the survival check below would be vacuous")
	}

	// Churn traffic until the kill: one goroutine creates sessions (and
	// records which creates were acknowledged — an acknowledged create is
	// journaled and fsynced, so it MUST survive), another keeps analyses
	// in flight by replaying the same idempotent padding.
	var mu sync.Mutex
	var acked []string
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%03d", i)
			if _, err := c.CreateSession(ctx, &server.CreateSessionRequest{
				Name: name, Netlist: netSrc, SPEF: spefSrc, Timing: winSrc,
			}); err != nil {
				return // the kill won the race
			}
			mu.Lock()
			acked = append(acked, name)
			mu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Reanalyze(ctx, "bus", &server.ReanalyzeRequest{Padding: pad}, 0); err != nil {
				return
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()
	close(stop)
	wg.Wait()
	mu.Lock()
	survivors := append([]string{"bus"}, acked...)
	mu.Unlock()
	if len(survivors) < 2 {
		t.Log("no churn create was acknowledged before the kill; still checking the base session")
	}

	// Restart over the same directory. Retries are fine here; the fault
	// is behind us.
	_, base2 := startChild(t, dir)
	c2 := client.New(base2, client.RetryPolicy{})
	list, err := c2.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]server.SessionInfo, len(list))
	for _, info := range list {
		have[info.Name] = info
	}
	for _, name := range survivors {
		info, ok := have[name]
		if !ok {
			t.Fatalf("acknowledged session %q lost by the crash (restored: %v)", name, keys(have))
		}
		if !info.Persisted {
			t.Fatalf("restored session %q not marked persisted: %+v", name, info)
		}
	}

	// The acknowledged padding survived: replaying it changes nothing,
	// and the analysis matches the pre-kill result.
	replayed, err := c2.Reanalyze(ctx, "bus", &server.ReanalyzeRequest{Padding: pad}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.ChangedNets != 0 {
		t.Fatalf("padding did not survive the SIGKILL: %d nets changed on replay", replayed.ChangedNets)
	}
	if replayed.Noise.Stats.Victims != padded.Noise.Stats.Victims {
		t.Fatalf("victims %d -> %d across the crash", padded.Noise.Stats.Victims, replayed.Noise.Stats.Victims)
	}

	// A SIGKILL's worst on-disk signature is a torn journal tail, which
	// recovery discards silently — nothing should be quarantined.
	rec, err := c2.Recovery(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Quarantined) != 0 {
		t.Fatalf("SIGKILL produced quarantined state: %+v", rec.Quarantined)
	}

	// The operator view of the same story.
	var out, errb strings.Builder
	if code := run(ctx, []string{"recovery", "-server", base2}, &out, &errb); code != exitClean {
		t.Fatalf("recovery subcommand: exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "restored") {
		t.Fatalf("recovery output: %s", out.String())
	}
}

func keys(m map[string]server.SessionInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
