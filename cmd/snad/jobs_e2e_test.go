package main

// Async-job crash-recovery acceptance test: an iterate job's server
// process is SIGKILLed mid-run — after at least one round-boundary
// checkpoint landed on disk — and a restart over the same data directory
// must re-enqueue the acknowledged job, resume it from the checkpoint,
// and finish with noise and delay sections byte-identical to an
// uninterrupted run. The same restarted server then quarantines a
// panic-injected poison job while staying fully available.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/server"
)

func TestJobsSIGKILLResumeAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	child, base := startChild(t, dir)
	ctx := context.Background()
	c := client.New(base, client.RetryPolicy{MaxAttempts: 1})

	// A 10-bit bus with 10ms per-net sleeps makes each fixpoint round slow
	// enough to SIGKILL between a checkpoint landing and the job finishing.
	netPath, spefPath, winPath := writeBus(t, t.TempDir(), 10)
	mustRead := func(p string) string {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if _, err := c.CreateSession(ctx, &server.CreateSessionRequest{
		Name: "bus", Netlist: mustRead(netPath), SPEF: mustRead(spefPath), Timing: mustRead(winPath),
		Options: server.SessionOptions{InjectFault: "sleep:*"},
	}); err != nil {
		t.Fatal(err)
	}

	snap, err := c.SubmitJob(ctx, &jobs.Spec{Session: "bus", Type: "iterate", Delay: true})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the instant the first round checkpoint exists. If the job ever
	// finishes before one is observed, the fixture is too fast to prove
	// anything — fail loudly rather than pass vacuously.
	ckptGlob := filepath.Join(dir, "jobs", "checkpoints", "*.ckpt.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if m, _ := filepath.Glob(ckptGlob); len(m) > 0 {
			break
		}
		if js, err := c.JobStatus(ctx, snap.ID); err == nil && js.Terminal() {
			t.Fatalf("job reached %s before any checkpoint was written; grow the fixture", js.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no round checkpoint ever appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	// Restart over the same directory, with poison-job injection armed for
	// the quarantine half below (it targets analyze jobs only; the iterate
	// resume is untouched).
	_, base2 := startChild(t, dir, "-job-inject-fault", "panic:analyze:*", "-job-max-attempts", "2")
	c2 := client.New(base2, client.RetryPolicy{})

	final, err := c2.WaitJob(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != string(jobs.StateDone) {
		t.Fatalf("resumed job ended %s (quarantined=%v, diags=%+v, err=%s)",
			final.State, final.Quarantined, final.Diags, final.Error)
	}
	// The killed attempt was journaled before it ran, so it still counts:
	// the resume is attempt 2, and the crash left an interrupted diag.
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (killed attempt + resume)", final.Attempts)
	}
	if len(final.Diags) != 1 || final.Diags[0].Stage != "interrupted" {
		t.Fatalf("diags = %+v, want one interrupted record", final.Diags)
	}
	var resumed server.AnalyzeResponse
	if err := json.Unmarshal(final.Result, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.Iterate == nil || !resumed.Iterate.Resumed {
		t.Fatalf("iterate metadata = %+v, want Resumed", resumed.Iterate)
	}

	// Byte-identical to an uninterrupted run: an oracle job on the same
	// restarted server (iterate always starts from the session's design,
	// so a fresh run is the uninterrupted answer).
	oracleSnap, err := c2.SubmitJob(ctx, &jobs.Spec{Session: "bus", Type: "iterate", Delay: true})
	if err != nil {
		t.Fatal(err)
	}
	oracleFinal, err := c2.WaitJob(ctx, oracleSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if oracleFinal.State != string(jobs.StateDone) {
		t.Fatalf("oracle job ended %s: %+v", oracleFinal.State, oracleFinal.Diags)
	}
	var oracle server.AnalyzeResponse
	if err := json.Unmarshal(oracleFinal.Result, &oracle); err != nil {
		t.Fatal(err)
	}
	if oracle.Iterate.Resumed {
		t.Fatal("oracle run claims to be resumed; it must start from round 1")
	}
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Byte-identical analysis content. Execution statistics are exempt,
	// per the checkpoint-resume contract (see shard.TestCheckpointResume):
	// a resumed run's fresh engines re-evaluate more than the oracle's
	// persistent ones, so counters like Iterations legitimately differ.
	resumed.Noise.Stats = core.Stats{}
	oracle.Noise.Stats = core.Stats{}
	if !bytes.Equal(mustJSON(resumed.Noise), mustJSON(oracle.Noise)) {
		t.Fatal("resumed noise section differs from the uninterrupted run")
	}
	if !bytes.Equal(mustJSON(resumed.Delay), mustJSON(oracle.Delay)) {
		t.Fatal("resumed delay section differs from the uninterrupted run")
	}
	if resumed.Iterate.Rounds != oracle.Iterate.Rounds || resumed.Iterate.Converged != oracle.Iterate.Converged {
		t.Fatalf("resumed loop (%d,%v) vs oracle (%d,%v)",
			resumed.Iterate.Rounds, resumed.Iterate.Converged, oracle.Iterate.Rounds, oracle.Iterate.Converged)
	}
	// The job's terminal checkpoint cleanup ran.
	if m, _ := filepath.Glob(ckptGlob); len(m) != 0 {
		t.Fatalf("checkpoints left behind after terminal jobs: %v", m)
	}

	// Poison half: the injected panic kills every analyze-job attempt, so
	// the job lands in quarantine with per-attempt evidence...
	poisonSnap, err := c2.SubmitJob(ctx, &jobs.Spec{Session: "bus", Type: "analyze"})
	if err != nil {
		t.Fatal(err)
	}
	poison, err := c2.WaitJob(ctx, poisonSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if poison.State != string(jobs.StateFailed) || !poison.Quarantined {
		t.Fatalf("poison job = %+v, want failed+quarantined", poison)
	}
	if len(poison.Diags) != 2 || poison.Diags[0].Stage != "panic" {
		t.Fatalf("poison diags = %+v, want 2 panic records", poison.Diags)
	}
	// ...while the server keeps serving interactive work on the same
	// session, and the CLI surfaces the whole story.
	if _, err := c2.Analyze(ctx, "bus", nil, 0); err != nil {
		t.Fatalf("interactive analyze after quarantine: %v", err)
	}
	var out, errb strings.Builder
	if code := run(ctx, []string{"job", "-server", base2, "-id", poisonSnap.ID}, &out, &errb); code != exitFail {
		t.Fatalf("job subcommand on a quarantined job: exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "QUARANTINED") {
		t.Fatalf("job output: %s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(ctx, []string{"jobs", "-server", base2}, &out, &errb); code != exitClean {
		t.Fatalf("jobs subcommand: exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[quarantined]") || !strings.Contains(out.String(), snap.ID) {
		t.Fatalf("jobs listing: %s", out.String())
	}
}

// TestJobsCLISubmitWait drives the job subcommands end to end against an
// in-process server: submit -wait maps a done analyze job onto the same
// exit discipline as a synchronous analyze, and cancel answers on a
// queued job.
func TestJobsCLISubmitWait(t *testing.T) {
	base, exit, _ := startServe(t, "-quiet")
	netPath, spefPath, winPath := writeBus(t, t.TempDir(), 4)

	runCmd := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := run(context.Background(), args, &out, &errb)
		return code, out.String(), errb.String()
	}

	code, out, errOut := runCmd("create", "-server", base, "-name", "bus",
		"-net", netPath, "-spef", spefPath, "-win", winPath)
	if code != exitClean {
		t.Fatalf("create: exit %d: %s%s", code, out, errOut)
	}

	code, out, errOut = runCmd("submit", "-server", base, "-name", "bus", "-type", "analyze", "-delay", "-wait")
	if code != exitClean && code != exitViolations {
		t.Fatalf("submit -wait: exit %d: %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "accepted") || !strings.Contains(out, "victims") {
		t.Fatalf("submit -wait output: %s", out)
	}

	code, out, errOut = runCmd("submit", "-server", base, "-name", "bus", "-type", "sweep",
		"-sweep", "noise:0.02,all:0.05", "-wait")
	if code != exitClean {
		t.Fatalf("submit sweep: exit %d: %s%s", code, out, errOut)
	}
	if strings.Count(out, "threshold=") != 2 {
		t.Fatalf("sweep output: %s", out)
	}

	// Usage errors stay structured.
	if code, _, _ := runCmd("submit", "-server", base, "-type", "analyze"); code != exitUsage {
		t.Fatalf("submit without -name: exit %d", code)
	}
	if code, _, _ := runCmd("job", "-server", base); code != exitUsage {
		t.Fatalf("job without -id: exit %d", code)
	}
	if code, _, _ := runCmd("submit", "-server", base, "-name", "bus", "-type", "sweep", "-sweep", "noise:bad"); code != exitUsage {
		t.Fatalf("bad sweep spec: exit %d", code)
	}

	// Cancel on a job that no longer exists is a structured failure.
	code, _, errOut = runCmd("cancel", "-server", base, "-id", "job-999999")
	if code != exitFail || !strings.Contains(errOut, "not_found") {
		t.Fatalf("cancel missing job: exit %d: %s", code, errOut)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-exit; code != exitClean {
		t.Fatalf("idle drain exit = %d", code)
	}
}
