package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/server"
)

// runJobs dispatches the async-job subcommands: submit, jobs, job,
// cancel. They live in their own flag set because job flags (-type,
// -sweep, -id, -wait) share no surface with the session commands.
func runJobs(ctx context.Context, cmd string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snad "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8347", "snad server base URL")
		retries   = fs.Int("retries", 0, "max attempts for retryable failures (default 4)")
		tenant    = fs.String("tenant", "", "tenant ID for fair scheduling (X-Snad-Tenant)")

		// submit flags
		name        = fs.String("name", "", "session the job runs against")
		jobType     = fs.String("type", "analyze", "job type: analyze | reanalyze | iterate | sweep")
		delay       = fs.Bool("delay", false, "include the crosstalk delta-delay section in the result")
		pad         = fs.String("pad", "", "reanalyze padding: net=seconds[,net=seconds...]")
		maxRounds   = fs.Int("max-rounds", 0, "iterate: bound on the fixpoint rounds (default 8)")
		shards      = fs.Int("shards", 0, "iterate: shard count for a distributed run (0 = server default)")
		local       = fs.Bool("local", false, "iterate: force a single-process run")
		sweepSpec   = fs.String("sweep", "", "sweep points: mode[:threshold][,mode[:threshold]...], e.g. noise:0.02,all:0.05")
		deadline    = fs.String("deadline", "", "per-attempt execution budget, e.g. 90s (default: server's)")
		maxAttempts = fs.Int("max-attempts", 0, "retry budget (default: server's)")
		wait        = fs.Bool("wait", false, "block until the job reaches a terminal state")

		// jobs flags
		state = fs.String("state", "", "jobs: filter by state (queued|running|done|failed|canceled|quarantined)")

		// job/cancel flags
		id      = fs.String("id", "", "job id (e.g. job-000001)")
		jsonOut = fs.Bool("json", false, "emit the raw job snapshot as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	c := client.New(*serverURL, client.RetryPolicy{MaxAttempts: *retries})
	c.SetTenant(*tenant)
	switch cmd {
	case "submit":
		if *name == "" {
			fmt.Fprintln(stderr, "snad: -name is required")
			return exitUsage
		}
		spec := &jobs.Spec{
			Session:     *name,
			Type:        *jobType,
			Delay:       *delay,
			MaxRounds:   *maxRounds,
			Shards:      *shards,
			Local:       *local,
			Deadline:    *deadline,
			MaxAttempts: *maxAttempts,
		}
		if *pad != "" {
			padding, err := parsePadding(*pad)
			if err != nil {
				fmt.Fprintln(stderr, "snad:", err)
				return exitUsage
			}
			spec.Padding = padding
		}
		if *sweepSpec != "" {
			points, err := parseSweep(*sweepSpec)
			if err != nil {
				fmt.Fprintln(stderr, "snad:", err)
				return exitUsage
			}
			spec.Sweep = points
		}
		snap, err := c.SubmitJob(ctx, spec)
		if err != nil {
			return clientFail(stderr, err)
		}
		fmt.Fprintf(stdout, "job %s accepted: %s on session %s\n", snap.ID, snap.Type, snap.Session)
		if !*wait {
			return exitClean
		}
		return waitAndPrint(ctx, c, snap.ID, *jsonOut, stdout, stderr)
	case "jobs":
		list, err := c.Jobs(ctx, *state)
		if err != nil {
			return clientFail(stderr, err)
		}
		if *jsonOut {
			return printJSON(stdout, server.JobsResponse{Jobs: list})
		}
		report.JobsText(stdout, list)
		return exitClean
	case "job":
		if *id == "" {
			fmt.Fprintln(stderr, "snad: -id is required")
			return exitUsage
		}
		if *wait {
			return waitAndPrint(ctx, c, *id, *jsonOut, stdout, stderr)
		}
		snap, err := c.JobStatus(ctx, *id)
		if err != nil {
			return clientFail(stderr, err)
		}
		return printJob(stdout, snap, *jsonOut)
	case "cancel":
		if *id == "" {
			fmt.Fprintln(stderr, "snad: -id is required")
			return exitUsage
		}
		snap, err := c.CancelJob(ctx, *id)
		if err != nil {
			return clientFail(stderr, err)
		}
		if snap.State == string(jobs.StateCanceled) {
			fmt.Fprintf(stdout, "job %s canceled\n", snap.ID)
		} else {
			fmt.Fprintf(stdout, "job %s cancel requested (still %s)\n", snap.ID, snap.State)
		}
		return exitClean
	}
	return exitUsage
}

// waitAndPrint blocks until the job is terminal and maps its outcome onto
// the exit discipline: a done analysis-family job reuses printAnalysis
// (violations → 1, degraded-clean → 5), any failure or cancellation is a
// request failure.
func waitAndPrint(ctx context.Context, c *client.Client, id string, jsonOut bool, stdout, stderr io.Writer) int {
	snap, err := c.WaitJob(ctx, id)
	if err != nil {
		return clientFail(stderr, err)
	}
	return printJob(stdout, snap, jsonOut)
}

func printJob(stdout io.Writer, snap *report.JobJSON, jsonOut bool) int {
	if jsonOut {
		return printJSON(stdout, snap)
	}
	report.JobText(stdout, snap)
	if snap.State != string(jobs.StateDone) {
		if snap.Terminal() {
			return exitFail
		}
		return exitClean
	}
	// A done job carries its analysis payload; render it with the same
	// summary (and exit discipline) a synchronous request gets.
	if snap.Type == "sweep" {
		var sw server.SweepResult
		if json.Unmarshal(snap.Result, &sw) == nil {
			for _, pt := range sw.Points {
				fmt.Fprintf(stdout, "  sweep %s threshold=%g: %d victims, %d violations, %d degraded\n",
					pt.Mode, pt.Threshold, pt.Noise.Stats.Victims, len(pt.Noise.Violations), pt.Noise.Stats.DegradedNets)
			}
		}
		return exitClean
	}
	var resp server.AnalyzeResponse
	if err := json.Unmarshal(snap.Result, &resp); err != nil || resp.Noise == nil {
		return exitClean
	}
	return printAnalysis(stdout, &resp)
}

func printJSON(stdout io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
	return exitClean
}

// parseSweep parses "mode[:threshold][,mode[:threshold]...]" into sweep
// points; an empty mode ("" or "-") keeps the session's.
func parseSweep(spec string) ([]jobs.SweepPoint, error) {
	var out []jobs.SweepPoint
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		mode, val, hasThresh := strings.Cut(item, ":")
		if mode == "-" {
			mode = ""
		}
		pt := jobs.SweepPoint{Mode: mode}
		if hasThresh {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("bad sweep threshold %q in %q", val, item)
			}
			pt.Threshold = f
		}
		out = append(out, pt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sweep needs at least one point (mode[:threshold],...)")
	}
	return out, nil
}
