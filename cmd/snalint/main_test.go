package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/workload"
)

func writeBus(t *testing.T, dir, defects string) (netPath, spefPath, winPath string) {
	t.Helper()
	g, err := workload.Bus(workload.BusSpec{Bits: 4, Segs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if defects != "" {
		d, err := workload.ParseDefects(defects)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Inject(d); err != nil {
			t.Fatal(err)
		}
	}
	netPath = filepath.Join(dir, "bus.net")
	spefPath = filepath.Join(dir, "bus.spef")
	winPath = filepath.Join(dir, "bus.win")
	for _, w := range []struct {
		path string
		fn   func(*os.File) error
	}{
		{netPath, func(f *os.File) error { return netlist.Write(f, g.Design) }},
		{spefPath, func(f *os.File) error { return spef.Write(f, g.Paras) }},
		{winPath, func(f *os.File) error { return sta.WriteInputTiming(f, g.Inputs) }},
	} {
		f, err := os.Create(w.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.fn(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return netPath, spefPath, winPath
}

func runLint(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRulesListing(t *testing.T) {
	code, stdout, _ := runLint("-rules")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d", code, exitClean)
	}
	for _, id := range []string{"NL001", "NL002", "NL003", "LIB001", "LIB002", "BND001", "SPF001", "SPF002", "RC001", "STA001"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("rule listing missing %s:\n%s", id, stdout)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-badflag"},
		{"-net", "x", "-suppress", "NOPE42"},
	} {
		if code, _, _ := runLint(args...); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestCleanDesign(t *testing.T) {
	n, s, w := writeBus(t, t.TempDir(), "")
	code, stdout, _ := runLint("-net", n, "-spef", s, "-win", w)
	if code != exitClean {
		t.Fatalf("exit = %d, want %d; stdout:\n%s", code, exitClean, stdout)
	}
}

func TestDefectiveDesign(t *testing.T) {
	n, s, w := writeBus(t, t.TempDir(), "multi-driven,floating-input")
	code, stdout, _ := runLint("-net", n, "-spef", s, "-win", w)
	if code != exitLint {
		t.Fatalf("exit = %d, want %d; stdout:\n%s", code, exitLint, stdout)
	}
	for _, id := range []string{"NL001", "NL002"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("report missing %s:\n%s", id, stdout)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	n, s, w := writeBus(t, t.TempDir(), "multi-driven")
	code, stdout, _ := runLint("-net", n, "-spef", s, "-win", w, "-json")
	if code != exitLint {
		t.Fatalf("exit = %d, want %d", code, exitLint)
	}
	var got struct {
		Errors      int `json:"errors"`
		Diagnostics []struct {
			Rule string `json:"rule"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout)
	}
	if got.Errors == 0 || len(got.Diagnostics) == 0 || !strings.HasPrefix(got.Diagnostics[0].Rule, "NL001") {
		t.Fatalf("JSON payload = %+v", got)
	}
}

func TestLoadFailure(t *testing.T) {
	if code, _, _ := runLint("-net", filepath.Join(t.TempDir(), "ghost.net")); code != exitFail {
		t.Fatalf("exit = %d, want %d", code, exitFail)
	}
}
