// snalint is the standalone design-rule linter: it loads the same input
// database as sna (netlist, cell library, parasitics, input timing), runs
// every registered lint rule, and prints the diagnostics without running
// noise analysis. Use it to gate extractions and generated workloads in
// scripts and CI.
//
// Usage:
//
//	snalint -net design.net [-spef design.spef] [-lib lib.nlib] [-win design.win] \
//	        [-json] [-werror] [-suppress NL003,SPF001]
//	snalint -rules
//
// -rules prints the rule reference (ID, default severity, title) and
// exits. -json emits the diagnostics as JSON instead of the aligned table.
//
// Exit codes:
//
//	0  no error-severity findings
//	2  lint found error-severity problems
//	3  usage error (bad flags, missing -net, unknown rule ID)
//	4  load failure (unreadable or unparsable input)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/liberty"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/vlog"
)

// Exit codes match sna's lint-related subset (there is no "violations"
// outcome here because snalint never runs the analysis).
const (
	exitClean = 0
	exitLint  = 2
	exitUsage = 3
	exitFail  = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netPath  = fs.String("net", "", "netlist file (.net or .v), required")
		spefPath = fs.String("spef", "", "parasitics file (.spef)")
		libPath  = fs.String("lib", "", "cell library (.nlib); default: built-in generic")
		winPath  = fs.String("win", "", "input timing file (.win)")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON")
		werror   = fs.Bool("werror", false, "treat warnings as errors")
		suppress = fs.String("suppress", "", "comma-separated rule IDs to suppress")
		rules    = fs.Bool("rules", false, "print the rule reference and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *rules {
		printRules(stdout)
		return exitClean
	}
	if *netPath == "" {
		fmt.Fprintln(stderr, "snalint: -net is required")
		return exitUsage
	}
	cfg := lint.Config{Werror: *werror}
	if *suppress != "" {
		known := make(map[string]bool)
		for _, r := range lint.Rules() {
			known[r.ID()] = true
		}
		cfg.Suppress = make(map[string]bool)
		for _, id := range strings.Split(*suppress, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(stderr, "snalint: unknown lint rule %q in -suppress\n", id)
				return exitUsage
			}
			cfg.Suppress[id] = true
		}
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "snalint:", err)
		return exitFail
	}
	lib := liberty.Generic()
	if *libPath != "" {
		l, err := loadFile(*libPath, liberty.Parse)
		if err != nil {
			return fail(err)
		}
		lib = l
	}
	design, err := loadNetlist(*netPath, lib)
	if err != nil {
		return fail(err)
	}
	var paras *spef.Parasitics
	if *spefPath != "" {
		if paras, err = loadFile(*spefPath, spef.Parse); err != nil {
			return fail(err)
		}
	}
	var inputs map[string]*sta.Timing
	if *winPath != "" {
		if inputs, err = loadFile(*winPath, sta.ParseInputTiming); err != nil {
			return fail(err)
		}
	}

	res := lint.Run(&lint.Input{Design: design, Lib: lib, Paras: paras, Inputs: inputs}, cfg)
	if *jsonOut {
		if err := report.WriteLintJSON(stdout, res); err != nil {
			return fail(err)
		}
	} else {
		report.Lint(stdout, res)
	}
	if res.HasErrors() {
		return exitLint
	}
	return exitClean
}

func printRules(w io.Writer) {
	t := report.NewTable("registered lint rules", "rule", "severity", "title")
	for _, r := range lint.Rules() {
		t.AddRow(r.ID(), r.Severity().String(), r.Title())
	}
	t.Render(w)
}

// loadFile opens a path and runs a reader-based parser over it.
func loadFile[T any](path string, parse func(io.Reader) (T, error)) (T, error) {
	f, err := os.Open(path)
	if err != nil {
		var zero T
		return zero, err
	}
	defer f.Close()
	return parse(f)
}

func loadNetlist(path string, lib *liberty.Library) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".v") {
		return vlog.Parse(f, lib)
	}
	return netlist.Parse(f)
}
