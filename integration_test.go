package repro

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/noise"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestPipelineFileRoundTrip drives the exact path the command-line tools
// use: generate a workload, serialize netlist + parasitics + timing to
// their text formats, parse everything back, and verify the analysis of
// the round-tripped design matches the direct in-memory analysis.
func TestPipelineFileRoundTrip(t *testing.T) {
	g, err := workload.Bus(workload.BusSpec{
		Bits: 8, Segs: 2,
		CoupleC: 6 * units.Femto, GroundC: 2 * units.Femto,
		WindowSep: 120 * units.Pico, WindowWidth: 60 * units.Pico,
		PhaseGap: 3000 * units.Pico,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Serialize.
	var netBuf, spefBuf, winBuf bytes.Buffer
	if err := netlist.Write(&netBuf, g.Design); err != nil {
		t.Fatal(err)
	}
	if err := spef.Write(&spefBuf, g.Paras); err != nil {
		t.Fatal(err)
	}
	if err := sta.WriteInputTiming(&winBuf, g.Inputs); err != nil {
		t.Fatal(err)
	}

	// Parse back.
	d2, err := netlist.Parse(&netBuf)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spef.Parse(&spefBuf)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := sta.ParseInputTiming(&winBuf)
	if err != nil {
		t.Fatal(err)
	}

	lib := liberty.Generic()
	bDirect, err := g.Bind(lib)
	if err != nil {
		t.Fatal(err)
	}
	bFile, err := bind.New(d2, lib, p2)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []core.Mode{core.ModeAllAggressors, core.ModeNoiseWindows} {
		rDirect, err := core.Analyze(bDirect, core.Options{Mode: mode, STA: g.STAOptions()})
		if err != nil {
			t.Fatal(err)
		}
		rFile, err := core.Analyze(bFile, core.Options{Mode: mode, STA: sta.Options{InputTiming: in2}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rDirect.Violations) != len(rFile.Violations) {
			t.Fatalf("%v: violations %d direct vs %d file",
				mode, len(rDirect.Violations), len(rFile.Violations))
		}
		if !units.ApproxEqual(rDirect.TotalNoise(), rFile.TotalNoise(), 1e-9) {
			t.Fatalf("%v: total noise %g direct vs %g file",
				mode, rDirect.TotalNoise(), rFile.TotalNoise())
		}
		// Per-net fidelity on the interesting line.
		mid := workload.MiddleBusNet(8)
		pd := rDirect.NoiseOf(mid).WorstPeak()
		pf := rFile.NoiseOf(mid).WorstPeak()
		if !units.ApproxEqual(pd, pf, 1e-9) {
			t.Fatalf("%v: %s peak %g direct vs %g file", mode, mid, pd, pf)
		}
	}
}

// TestEndToEndConservativeVsSimulation checks the whole analytical chain
// against the transient golden: the pessimistic (all-aggressors) combined
// peak on a victim must bound the simulated peak when all its aggressors
// are deliberately aligned.
func TestEndToEndConservativeVsSimulation(t *testing.T) {
	g, err := workload.Bus(workload.BusSpec{
		Bits: 4, Segs: 1,
		CoupleC: 5 * units.Femto, GroundC: 3 * units.Femto,
		WindowSep: 0, WindowWidth: 60 * units.Pico,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(b, core.Options{Mode: core.ModeAllAggressors, STA: g.STAOptions()})
	if err != nil {
		t.Fatal(err)
	}
	mid := workload.MiddleBusNet(4)
	analytic := res.NoiseOf(mid).Comb[core.KindLow].Peak
	if analytic <= 0 {
		t.Fatal("no analytic noise")
	}

	// Rebuild the same cluster for the simulator and align the two
	// aggressors' rising edges.
	ctx, err := noise.BuildContext(b, b.Net.FindNet(mid))
	if err != nil {
		t.Fatal(err)
	}
	var aggs []noise.ClusterAggressor
	for i := range ctx.Couplings {
		// Drive the golden cluster with the same edge rate the analysis
		// used: the STA-computed fastest rise slew of that aggressor.
		slew := res.STA.TimingOfNet(ctx.Couplings[i].Aggressor).SlewRise.Min
		if math.IsInf(slew, 0) || slew <= 0 {
			t.Fatalf("no STA slew for %s", ctx.Couplings[i].Aggressor)
		}
		aggs = append(aggs, noise.ClusterAggressor{
			Coupling: &ctx.Couplings[i],
			Slew:     slew,
			Start:    0,
			Rise:     true,
		})
	}
	if len(aggs) != 2 {
		t.Fatalf("aggressors = %d, want 2", len(aggs))
	}
	drive := b.DriveRes(b.Net.FindNet(ctx.Couplings[0].Aggressor))
	golden, err := noise.SimulateCluster(ctx, aggs, drive, b.Lib.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Peak <= 0 {
		t.Fatal("no simulated noise")
	}
	if analytic < golden.Peak*0.98 {
		t.Fatalf("analysis not conservative: analytic %g < golden %g", analytic, golden.Peak)
	}
	// ...but not absurdly loose either (within 2x on this clean cluster).
	if analytic > golden.Peak*2 {
		t.Fatalf("analysis too loose: analytic %g vs golden %g", analytic, golden.Peak)
	}
}

// TestCrossModeInvariantsOnRandomFabrics asserts the ordering laws on a
// spread of random designs: both windowed analyses are bounded by the
// classical one (noise and violations), plus convergence. The sound tent
// default may sit slightly above the optimistic classical baseline B —
// see T11 — so only the A bound is asserted between them.
func TestCrossModeInvariantsOnRandomFabrics(t *testing.T) {
	lib := liberty.Generic()
	for seed := int64(1); seed <= 6; seed++ {
		g, err := workload.Fabric(workload.FabricSpec{
			Width: 8, Levels: 6,
			CoupleC: 5 * units.Femto, CouplingDensity: 2.5,
			GroundC: 1.5 * units.Femto, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Bind(lib)
		if err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			noise float64
			viol  int
		}
		var got [3]outcome
		for i, mode := range []core.Mode{core.ModeAllAggressors, core.ModeTimingWindows, core.ModeNoiseWindows} {
			res, err := core.Analyze(b, core.Options{Mode: mode, STA: g.STAOptions()})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stats.Converged {
				t.Fatalf("seed %d mode %v did not converge", seed, mode)
			}
			got[i] = outcome{noise: res.TotalNoise(), viol: len(res.Violations)}
		}
		if !(got[2].noise <= got[0].noise+1e-9 && got[1].noise <= got[0].noise+1e-9) {
			t.Errorf("seed %d: noise bound violated: %+v", seed, got)
		}
		if !(got[2].viol <= got[0].viol && got[1].viol <= got[0].viol) {
			t.Errorf("seed %d: violation bound violated: %+v", seed, got)
		}
	}
}

// TestMultiphaseSetsNeverWorseThanHull asserts the A2 ablation's law on a
// sweep: collapsing set windows to hulls can only increase reported noise.
func TestMultiphaseSetsNeverWorseThanHull(t *testing.T) {
	lib := liberty.Generic()
	for _, gapPS := range []float64{0, 300, 1000, 5000} {
		g, err := workload.Bus(workload.BusSpec{
			Bits: 8, Segs: 2,
			CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
			WindowSep: 250 * units.Pico, WindowWidth: 80 * units.Pico,
			PhaseGap: gapPS * units.Pico,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Bind(lib)
		if err != nil {
			t.Fatal(err)
		}
		run := func(hull bool) float64 {
			res, err := core.Analyze(b, core.Options{
				Mode: core.ModeNoiseWindows, HullWindows: hull,
				STA: g.STAOptions(),
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.TotalNoise()
		}
		sets, hull := run(false), run(true)
		if sets > hull+1e-9 {
			t.Errorf("gap %gps: sets %g noisier than hull %g", gapPS, sets, hull)
		}
	}
}

// TestDelayAnalysisAgreesAcrossPipeline runs delta-delay over the file
// round trip as well.
func TestDelayAnalysisAgreesAcrossPipeline(t *testing.T) {
	g, err := workload.Bus(workload.BusSpec{
		Bits: 4, Segs: 1,
		CoupleC:   5 * units.Femto,
		WindowSep: 0, WindowWidth: 80 * units.Pico,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeDelay(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// Every line switches and every line has opposing neighbours in the
	// same window: all four lines see push-out.
	for i := 0; i < 4; i++ {
		net := fmt.Sprintf("b%d", i)
		if im := res.ImpactOn(net, true); im == nil || im.Delta <= 0 {
			t.Errorf("no rise push-out on %s", net)
		}
	}
	if math.IsNaN(res.WorstDelta()) || res.WorstDelta() <= 0 {
		t.Fatalf("WorstDelta = %g", res.WorstDelta())
	}
}
