// Root benchmark harness: one testing.B benchmark per evaluation table and
// figure (DESIGN.md §4). Each benchmark regenerates its experiment at Quick
// fidelity per iteration, so `go test -bench=. -benchmem` both exercises
// the full pipeline and measures the cost of each experiment; the full
// tables behind EXPERIMENTS.md come from `go run ./cmd/noisebench`.
package repro

import (
	"testing"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/liberty"
	"repro/internal/units"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, experiments.Config{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkT1Pessimism regenerates Table 1: violations and total noise
// under the three combination policies.
func BenchmarkT1Pessimism(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkT2Accuracy regenerates Table 2: analytical glitch model versus
// the transient MNA simulator.
func BenchmarkT2Accuracy(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkT3Runtime regenerates Table 3: analysis runtime scaling.
func BenchmarkT3Runtime(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkT4Convergence regenerates Table 4: propagation fixpoint
// iteration counts.
func BenchmarkT4Convergence(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkT5Filtering regenerates Table 5: aggressor filter threshold
// sweep.
func BenchmarkT5Filtering(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkT6Combination regenerates Table 6: windowed combination
// statistics.
func BenchmarkT6Combination(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkT7DeltaDelay regenerates Table 7: windowed crosstalk delta-delay
// versus the classical estimate.
func BenchmarkT7DeltaDelay(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkF1Alignment regenerates Figure 1: combined peak versus
// aggressor window offset.
func BenchmarkF1Alignment(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkF2Propagation regenerates Figure 2: glitch propagation down a
// gate chain.
func BenchmarkF2Propagation(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkF3Waveform regenerates Figure 3: combined-waveform
// reconstruction versus the golden simulator.
func BenchmarkF3Waveform(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkT8Shielding regenerates Table 8: shield insertion versus
// analysis policy.
func BenchmarkT8Shielding(b *testing.B) { benchExperiment(b, "T8") }

// BenchmarkT9Correlation regenerates Table 9: logic-correlation filtering
// on complementary aggressor pairs.
func BenchmarkT9Correlation(b *testing.B) { benchExperiment(b, "T9") }

// BenchmarkT10Iteration regenerates Table 10: the joint noise-timing
// fixpoint loop.
func BenchmarkT10Iteration(b *testing.B) { benchExperiment(b, "T10") }

// BenchmarkT11MonteCarlo regenerates Table 11: sampled alignment versus
// the static bounds.
func BenchmarkT11MonteCarlo(b *testing.B) { benchExperiment(b, "T11") }

// BenchmarkA1Widening regenerates the occupancy-policy ablation: peak
// alignment versus width-widened noise windows.
func BenchmarkA1Widening(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2Multiphase regenerates the set-vs-hull window ablation on a
// two-phase bus.
func BenchmarkA2Multiphase(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkA3Corners regenerates the process-corner sweep.
func BenchmarkA3Corners(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkAnalyzeBus64 measures the core analysis alone (no experiment
// scaffolding) on a 64-bit bus under the paper's policy — the number that
// tracks engine-level regressions.
func BenchmarkAnalyzeBus64(b *testing.B) {
	g, err := workload.Bus(workload.BusSpec{
		Bits: 64, Segs: 2,
		WindowSep: 60 * units.Pico, WindowWidth: 80 * units.Pico,
	})
	if err != nil {
		b.Fatal(err)
	}
	bd, err := g.Bind(liberty.Generic())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()}
	if _, err := core.Analyze(bd, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(bd, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ladderFixture binds the multi-round convergence workload shared by the
// iterative benchmarks.
func ladderFixture(b *testing.B) (*bind.Design, core.Options) {
	b.Helper()
	g, err := workload.Ladder(workload.LadderSpec{Lines: 64, Steps: 5})
	if err != nil {
		b.Fatal(err)
	}
	bd, err := g.Bind(liberty.Generic())
	if err != nil {
		b.Fatal(err)
	}
	return bd, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()}
}

// BenchmarkAnalyzeIterative measures the incremental noise–timing loop on
// a workload that takes six rounds to converge: round one is a full
// analysis, every later round re-analyzes only the padded victim's dirty
// set while the 64-line background bus is reused untouched.
func BenchmarkAnalyzeIterative(b *testing.B) {
	bd, opts := ladderFixture(b)
	iter, err := core.AnalyzeIterative(bd, opts, 0)
	if err != nil {
		b.Fatal(err)
	}
	if iter.Rounds < 4 || !iter.Converged {
		b.Fatalf("fixture converged in %d rounds (conv=%v), want ≥ 4 for a meaningful loop",
			iter.Rounds, iter.Converged)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeIterative(bd, opts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeIterativeScratch is the pre-incremental reference: the
// same loop re-run from scratch every round (a fresh full analysis per
// round, as AnalyzeIterative did before the dirty-set engine). The ratio
// to BenchmarkAnalyzeIterative is the incremental speedup.
func BenchmarkAnalyzeIterativeScratch(b *testing.B) {
	bd, opts := ladderFixture(b)
	run := func() int {
		const tol = units.Pico / 100
		padding := make(map[string]float64)
		ropts := opts
		ropts.STA.WindowPadding = padding
		for round := 1; round <= 8; round++ {
			if _, err := core.Analyze(bd, ropts); err != nil {
				b.Fatal(err)
			}
			delay, err := core.AnalyzeDelay(bd, ropts)
			if err != nil {
				b.Fatal(err)
			}
			grew := false
			for _, im := range delay.Impacts {
				if im.Delta > padding[im.Net]+tol {
					padding[im.Net] = im.Delta
					grew = true
				}
			}
			if !grew {
				return round
			}
		}
		return -1
	}
	if rounds := run(); rounds < 4 {
		b.Fatalf("scratch loop converged in %d rounds, want ≥ 4", rounds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkAnalyzeFabric measures the engine on irregular logic with
// propagation, the other workload family.
func BenchmarkAnalyzeFabric(b *testing.B) {
	g, err := workload.Fabric(workload.FabricSpec{Width: 12, Levels: 8, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	bd, err := g.Bind(liberty.Generic())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()}
	if _, err := core.Analyze(bd, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(bd, opts); err != nil {
			b.Fatal(err)
		}
	}
}
