// Pessimism: slide one aggressor's switching window away from another's
// and watch the windowed combined peak collapse to the single-aggressor
// value while the classical analysis stays pessimistically flat — the
// paper's motivating picture, printed as a text series.
//
//	go run ./examples/pessimism
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	fmt.Println("two aggressors, window width 40ps; offset of the second window sweeps:")
	fmt.Printf("%8s  %14s  %14s  %s\n", "offset", "all-aggressors", "noise-windows", "")
	lib := liberty.Generic()
	var flat float64
	for _, offPS := range []float64{0, 20, 40, 60, 80, 100, 140, 200, 300, 500} {
		off := offPS * units.Pico
		g, err := workload.Star(workload.StarSpec{
			Windows: []interval.Window{
				interval.New(0, 40*units.Pico),
				interval.New(off, off+40*units.Pico), //snavet:nanguard off enumerates a literal table of finite picosecond offsets
			},
			CoupleC: 4 * units.Femto,
			GroundC: 8 * units.Femto,
		})
		if err != nil {
			log.Fatal(err)
		}
		b, err := g.Bind(lib)
		if err != nil {
			log.Fatal(err)
		}
		peak := func(mode core.Mode) float64 {
			res, err := core.Analyze(b, core.Options{Mode: mode, STA: g.STAOptions()})
			if err != nil {
				log.Fatal(err)
			}
			return res.NoiseOf("v").Comb[core.KindLow].Peak
		}
		pA := peak(core.ModeAllAggressors)
		pC := peak(core.ModeNoiseWindows)
		if flat == 0 {
			flat = pA
		}
		bar := strings.Repeat("#", int(pC/flat*40+0.5))
		fmt.Printf("%8s  %14s  %14s  %s\n",
			report.SI(off, "s"), report.SI(pA, "V"), report.SI(pC, "V"), bar)
	}
	fmt.Println("\nthe all-aggressors column is flat: it assumes the windows always align.")
	fmt.Println("the noise-window column steps down once the glitch windows stop overlapping.")
}
