// Propagation: inject a strong crosstalk glitch at the head of an
// inverter chain and follow it through the gates — peak attenuating,
// width growing, and the noise window marching later by one gate delay
// per stage.
//
//	go run ./examples/propagation
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	const depth = 6
	g, err := workload.Chain(workload.ChainSpec{
		Depth:   depth,
		CoupleC: 10 * units.Femto,
		GroundC: 1 * units.Femto,
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("glitch propagation down a %d-stage inverter chain (converged in %d passes)",
			depth, res.Stats.Iterations),
		"stage", "net", "peak", "width", "noise-window", "victim-state")
	for s := 0; s <= depth; s++ {
		net := fmt.Sprintf("v%d", s)
		if s == depth {
			net = "out"
		}
		nn := res.NoiseOf(net)
		if nn == nil {
			continue
		}
		var comb core.Combined
		state := "quiet"
		for _, k := range core.Kinds {
			if nn.Comb[k].Peak > comb.Peak {
				comb = nn.Comb[k]
				state = k.String()
			}
		}
		t.AddRow(fmt.Sprintf("%d", s), net,
			report.SI(comb.Peak, "V"), report.SI(comb.Width, "s"),
			comb.Window.String(), state)
	}
	t.Render(os.Stdout)

	fmt.Println("\nthe glitch dies once it falls below the cells' noise-transfer threshold;")
	fmt.Println("its window (when it can occur) shifts later by one gate delay per stage,")
	fmt.Println("which is exactly the information the windowed combination uses downstream.")
}
