// Repair: run the full signoff loop — analyze, take the advisor's fix,
// apply it, and re-analyze to show the design now passes.
//
// A victim attacked by four aligned aggressors violates its receiver's
// immunity curve. The advisor quantifies two fixes with the same model the
// analysis used: cut the dominant coupling (spacing/shielding) or upsize
// the victim's holding driver. The example applies each and verifies both
// close the violations.
//
//	go run ./examples/repair
package main

import (
	"fmt"
	"log"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	base := workload.StarSpec{
		Windows: []interval.Window{
			interval.New(0, 80*units.Pico),
			interval.New(0, 80*units.Pico),
			interval.New(0, 80*units.Pico),
		},
		CoupleC:      8 * units.Femto,
		GroundC:      2 * units.Femto,
		VictimDriver: "INV_X1",
	}

	res, repairs := analyzeStar(base)
	fmt.Printf("before repair: %d violations, worst slack %s\n",
		len(res.Violations), report.SI(res.WorstSlack(), "V"))
	var upsizeTo string
	var cut float64
	for _, r := range repairs {
		fmt.Println("  " + r.Describe())
		if r.UpsizeTo != "" {
			upsizeTo = r.UpsizeTo
		}
		if r.CouplingCut > cut {
			cut = r.CouplingCut
		}
	}

	if upsizeTo != "" {
		fixed := base
		fixed.VictimDriver = upsizeTo
		after, _ := analyzeStar(fixed)
		fmt.Printf("\nafter upsizing the victim driver to %s: %d violations (worst slack %s)\n",
			upsizeTo, len(after.Violations), report.SI(after.WorstSlack(), "V"))
	}
	if cut > 0 {
		fixed := base
		// Apply the advised cut as extra spacing on every aggressor (the
		// advisor's number is for the dominant one alone, so this is a
		// stronger version of the same fix).
		fixed.CoupleC = base.CoupleC * (1 - cut)
		after, _ := analyzeStar(fixed)
		fmt.Printf("after spacing all aggressors by the advised %.0f%% cut: %d violations\n",
			cut*100, len(after.Violations))
	}
}

func analyzeStar(spec workload.StarSpec) (*core.Result, []core.Repair) {
	g, err := workload.Star(spec)
	if err != nil {
		log.Fatal(err)
	}
	var b *bind.Design
	if b, err = g.Bind(liberty.Generic()); err != nil {
		log.Fatal(err)
	}
	res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		log.Fatal(err)
	}
	var repairs []core.Repair
	if len(res.Violations) > 0 {
		if repairs, err = core.SuggestRepairs(b, res, 0.05); err != nil {
			log.Fatal(err)
		}
	}
	return res, repairs
}
