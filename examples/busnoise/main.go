// Busnoise: analyze a 32-bit coupled parallel bus — the workload the
// paper's introduction motivates — under all three combination policies
// and show how noise windows remove false violations.
//
//	go run ./examples/busnoise
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	// A 32-bit bus whose lines switch in staggered 80 ps windows, 150 ps
	// apart: adjacent aggressors of any victim can never align, so the
	// classical all-aggressors analysis is maximally pessimistic here.
	g, err := workload.Bus(workload.BusSpec{
		Bits: 32, Segs: 2,
		CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
		WindowSep: 150 * units.Pico, WindowWidth: 80 * units.Pico,
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		"32-bit coupled bus, staggered switching windows",
		"mode", "violations", "total-noise", "worst-victim-peak")
	for _, mode := range []core.Mode{core.ModeAllAggressors, core.ModeTimingWindows, core.ModeNoiseWindows} {
		res, err := core.Analyze(b, core.Options{Mode: mode, STA: g.STAOptions()})
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, nn := range res.Nets {
			if p := nn.WorstPeak(); p > worst {
				worst = p
			}
		}
		t.AddRow(mode.String(),
			fmt.Sprintf("%d", len(res.Violations)),
			report.SI(res.TotalNoise(), "V"),
			report.SI(worst, "V"))
	}
	t.Render(os.Stdout)

	// Show the middle line (attacked from both sides) in detail under
	// the paper's policy.
	res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report.NetSummary(os.Stdout, res.NoiseOf(workload.MiddleBusNet(32)))
	fmt.Println()
	report.Violations(os.Stdout, res)
}
