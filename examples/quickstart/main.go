// Quickstart: build a three-net design in code, attach parasitics with a
// cross-coupling capacitor, run windowed static noise analysis, and print
// the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/spef"
	"repro/internal/sta"
)

func main() {
	// 1. A victim inverter and an aggressor inverter, side by side.
	d := netlist.New("quickstart")
	check(connectLine(d, "victim"))
	check(connectLine(d, "aggressor"))

	// 2. Parasitics: the two wires run parallel for a while, coupling
	//    6 fF; each also has 4 fF to ground and 100 Ω of wire.
	paras := spef.NewParasitics("quickstart")
	check(paras.AddNet(wire("victim", "aggressor", 6e-15)))
	check(paras.AddNet(wire("aggressor", "victim", 6e-15)))

	// 3. Bind against the built-in generic library.
	b, err := bind.New(d, liberty.Generic(), paras)
	check(err)

	// 4. Timing: the aggressor switches somewhere in [0, 100 ps]; the
	//    victim is quiet.
	inputs := map[string]*sta.Timing{
		"in_aggressor": {
			Rise:     interval.SetOf(0, 100e-12),
			Fall:     interval.SetOf(0, 100e-12),
			SlewRise: sta.Range{Min: 20e-12, Max: 30e-12},
			SlewFall: sta.Range{Min: 20e-12, Max: 30e-12},
		},
		"in_victim": {
			SlewRise: sta.Range{Min: 1, Max: -1},
			SlewFall: sta.Range{Min: 1, Max: -1},
		},
	}

	// 5. Analyze with noise windows and print everything.
	res, err := core.Analyze(b, core.Options{
		Mode: core.ModeNoiseWindows,
		STA:  sta.Options{InputTiming: inputs},
	})
	check(err)

	report.Violations(os.Stdout, res)
	fmt.Println()
	report.NetSummary(os.Stdout, res.NoiseOf("victim"))

	nn := res.NoiseOf("victim").Comb[core.KindLow]
	fmt.Printf("\nworst upward glitch on the quiet-low victim: %s wide %s, possible during %v\n",
		report.SI(nn.Peak, "V"), report.SI(nn.Width, "s"), nn.Window)
}

// connectLine adds port in_<name> -> INV_X1 d_<name> -> net <name> ->
// INV_X1 r_<name> -> port out_<name>.
func connectLine(d *netlist.Design, name string) error {
	if _, err := d.AddPort("in_"+name, netlist.In); err != nil {
		return err
	}
	if _, err := d.AddPort("out_"+name, netlist.Out); err != nil {
		return err
	}
	if _, err := d.AddInst("d_"+name, "INV_X1"); err != nil {
		return err
	}
	if _, err := d.AddInst("r_"+name, "INV_X1"); err != nil {
		return err
	}
	steps := []struct {
		inst, pin, net string
		dir            netlist.Dir
	}{
		{"d_" + name, "A", "in_" + name, netlist.In},
		{"d_" + name, "Y", name, netlist.Out},
		{"r_" + name, "A", name, netlist.In},
		{"r_" + name, "Y", "out_" + name, netlist.Out},
	}
	for _, s := range steps {
		if err := d.Connect(s.inst, s.pin, s.net, s.dir); err != nil {
			return err
		}
	}
	return nil
}

// wire builds one net's SPEF record with a coupling cap to the other net.
func wire(name, other string, couple float64) *spef.Net {
	return &spef.Net{
		Name: name,
		Conns: []spef.Conn{
			{Pin: "d_" + name + ":Y", Dir: spef.DirOut, Node: "d_" + name + ":Y"},
			{Pin: "r_" + name + ":A", Dir: spef.DirIn, Node: "r_" + name + ":A"},
		},
		Caps: []spef.CapEntry{
			{Node: name + ":1", F: 4e-15},
			{Node: name + ":1", Other: other + ":1", F: couple},
		},
		Ress: []spef.ResEntry{
			{A: "d_" + name + ":Y", B: name + ":1", Ohms: 100},
			{A: name + ":1", B: "r_" + name + ":A", Ohms: 100},
		},
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
