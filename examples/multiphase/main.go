// Multiphase: every bus line switches in two clock phases far apart. A
// tool limited to single-interval (hull) switching windows must smear each
// aggressor across the whole gap and loses the staggering inside each
// phase; set-valued noise windows keep the phases separate. This is the
// general form of the paper's windows.
//
//	go run ./examples/multiphase
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	g, err := workload.Bus(workload.BusSpec{
		Bits: 16, Segs: 2,
		CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
		WindowSep: 250 * units.Pico, WindowWidth: 80 * units.Pico,
		PhaseGap: 5000 * units.Pico, // phase B five nanoseconds after phase A
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		"16-bit bus, two switching phases 5 ns apart, 250 ps stagger inside each",
		"analysis", "total-noise", "worst-victim")
	type cfg struct {
		name string
		mode core.Mode
		hull bool
	}
	for _, c := range []cfg{
		{"all-aggressors (no timing)", core.ModeAllAggressors, false},
		{"noise windows, hull (single interval)", core.ModeNoiseWindows, true},
		{"noise windows, sets (multi-phase)", core.ModeNoiseWindows, false},
	} {
		res, err := core.Analyze(b, core.Options{
			Mode: c.mode, HullWindows: c.hull, STA: g.STAOptions(),
		})
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, nn := range res.Nets {
			if p := nn.WorstPeak(); p > worst {
				worst = p
			}
		}
		t.AddRow(c.name, report.SI(res.TotalNoise(), "V"), report.SI(worst, "V"))
	}
	t.Render(os.Stdout)

	// Show the middle victim's event windows: two disjoint windows per
	// aggressor, one per phase.
	res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		log.Fatal(err)
	}
	mid := workload.MiddleBusNet(16)
	nn := res.NoiseOf(mid)
	fmt.Printf("\nvictim %s event windows (victim-low):\n", mid)
	for _, e := range nn.Events[core.KindLow] {
		fmt.Printf("  %-4s peak %s window %v\n", e.Source, report.SI(e.Peak, "V"), e.Window)
	}
	fmt.Println("\nthe hull analysis would fuse each aggressor's two windows into one")
	fmt.Println("5 ns interval, making every aggressor pair appear alignable.")
}
